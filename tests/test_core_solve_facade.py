"""Tests for the `repro.solve` façade, the solver registry, and the shims.

Acceptance contract of the API redesign: dispatching any of the three
solvers through one ``SolveSpec`` is **bit-identical** -- iterates, residual
histories, *and* cost-ledger charges -- to constructing the solver by hand;
the deprecated helpers delegate with unchanged behavior (including the
resilience options ``solve_with_failures`` used to drop); and derived
objects (global operator, set-up preconditioners) are cached per problem
until the matrix structure changes.
"""

import numpy as np
import pytest

import repro
from repro.cluster import FailureEvent, FailureInjector, MachineModel
from repro.core import (
    SOLVERS,
    BlockPCG,
    BlockSpec,
    DistributedPCG,
    ResilienceSpec,
    ResilientPCG,
    SolverRegistry,
    SolveSpec,
    distribute_problem,
    reference_solve,
    resilient_solve,
    solve,
    solve_with_failures,
)
from repro.core.redundancy import BackupPlacement
from repro.distributed import DistributedMultiVector, DistributedVector
from repro.matrices import poisson_2d
from repro.precond import make_preconditioner

N_NODES = 4
MATRIX = poisson_2d(12)          # n = 144, 36 rows per rank
RHS_1D = np.random.default_rng(7).standard_normal(MATRIX.shape[0])
RHS_2D = np.random.default_rng(8).standard_normal((MATRIX.shape[0], 3))
FAILURES = [FailureEvent(6, (1, 2))]


def fresh_problem(rhs=None):
    """A fresh jitter-free problem so ledger charges are deterministic."""
    return distribute_problem(MATRIX, rhs,
                              n_nodes=N_NODES,
                              machine=MachineModel(jitter_rel_std=0.0))


def ledger_state(problem):
    ledger = problem.cluster.ledger
    return (dict(ledger.times), dict(ledger.messages), dict(ledger.elements))


def build_direct_solver(solver_name, problem, overlap, engine):
    """Hand-constructed solver on *problem*, bypassing the façade."""
    precond = make_preconditioner("block_jacobi")
    precond.setup(MATRIX, problem.partition)
    common = dict(rtol=1e-8, context=problem.context,
                  overlap_spmv=overlap, engine=engine)
    if solver_name == "pcg":
        return DistributedPCG(problem.matrix, problem.rhs, precond, **common)
    if solver_name == "resilient_pcg":
        return ResilientPCG(
            problem.matrix, problem.rhs, precond, phi=2,
            failure_injector=FailureInjector(list(FAILURES)), **common)
    rhs = DistributedMultiVector.from_global(
        problem.cluster, problem.partition, "solve:B", RHS_2D)
    return BlockPCG(problem.matrix, rhs, precond, **common)


def facade_spec(solver_name, overlap, engine):
    resilience = (ResilienceSpec(phi=2, failures=tuple(FAILURES))
                  if solver_name == "resilient_pcg" else None)
    return SolveSpec(solver=solver_name, rtol=1e-8, overlap_spmv=overlap,
                     engine=engine, preconditioner="block_jacobi",
                     resilience=resilience)


class TestCrossSolverEquivalence:
    """`repro.solve(spec)` vs direct construction, all solvers x knobs."""

    @pytest.mark.parametrize("engine", [True, False],
                             ids=["engine", "reference"])
    @pytest.mark.parametrize("overlap", [True, False],
                             ids=["overlap", "serial"])
    @pytest.mark.parametrize("solver_name",
                             ["pcg", "resilient_pcg", "block_pcg"])
    def test_bit_identical_to_direct_construction(self, solver_name, overlap,
                                                  engine):
        rhs = RHS_2D if solver_name == "block_pcg" else RHS_1D

        facade_problem = fresh_problem(None if solver_name == "block_pcg"
                                       else rhs)
        via_facade = solve(facade_problem,
                           rhs if solver_name == "block_pcg" else None,
                           spec=facade_spec(solver_name, overlap, engine))

        direct_problem = fresh_problem(None if solver_name == "block_pcg"
                                       else rhs)
        direct = build_direct_solver(solver_name, direct_problem, overlap,
                                     engine).solve()

        assert np.array_equal(via_facade.x, direct.x)
        assert np.array_equal(via_facade.iterations, direct.iterations)
        if solver_name == "block_pcg":
            assert (via_facade.residual_histories
                    == direct.residual_histories)
        else:
            assert via_facade.residual_norms == direct.residual_norms
        assert via_facade.simulated_time == direct.simulated_time
        assert ledger_state(facade_problem) == ledger_state(direct_problem)

    def test_resilient_recoveries_identical(self):
        facade_problem = fresh_problem(RHS_1D)
        via_facade = solve(facade_problem,
                           spec=facade_spec("resilient_pcg", False, True))
        direct_problem = fresh_problem(RHS_1D)
        direct = build_direct_solver("resilient_pcg", direct_problem, False,
                                     True).solve()
        assert len(via_facade.recoveries) == len(direct.recoveries) == 1
        assert (via_facade.recoveries[0].failed_ranks
                == direct.recoveries[0].failed_ranks)
        assert (via_facade.recoveries[0].simulated_time
                == direct.recoveries[0].simulated_time)


class TestDispatchAndNormalization:
    def test_default_spec_selects_plain_pcg(self):
        result = solve(fresh_problem(RHS_1D))
        assert "phi" not in result.info  # the resilient solver's marker
        assert result.converged

    def test_resilience_extension_selects_resilient_pcg(self):
        result = solve(fresh_problem(RHS_1D), phi=1)
        assert result.info["phi"] == 1

    def test_2d_rhs_dispatches_to_block_pcg(self):
        result = solve(fresh_problem(), RHS_2D)
        assert result.x.shape == RHS_2D.shape
        assert result.all_converged

    def test_raw_matrix_is_distributed(self):
        result = solve(MATRIX, RHS_1D, n_nodes=N_NODES,
                       machine=MachineModel(jitter_rel_std=0.0))
        assert result.converged
        assert result.info["n_nodes"] == N_NODES

    def test_raw_matrix_with_2d_rhs(self):
        result = solve(MATRIX, RHS_2D, n_nodes=N_NODES)
        assert result.x.shape == RHS_2D.shape

    def test_distributed_rhs_accepted(self):
        problem = fresh_problem()
        rhs = DistributedVector.from_global(problem.cluster,
                                            problem.partition, "mine", RHS_1D)
        result = solve(problem, rhs)
        assert result.converged

    def test_rhs_on_other_cluster_rejected(self):
        problem, other = fresh_problem(), fresh_problem()
        with pytest.raises(ValueError, match="different cluster"):
            solve(problem, other.rhs)

    def test_cluster_options_rejected_with_problem(self):
        with pytest.raises(ValueError, match="n_nodes"):
            solve(fresh_problem(), n_nodes=8)

    def test_3d_rhs_rejected(self):
        with pytest.raises(ValueError, match="1-D or"):
            solve(fresh_problem(), np.zeros((4, 4, 4)))

    def test_single_rhs_solver_rejects_block_rhs(self):
        with pytest.raises(ValueError, match="single right-hand side"):
            solve(fresh_problem(), RHS_2D, spec=SolveSpec(solver="pcg"))

    def test_block_solver_rejects_resilience(self):
        with pytest.raises(ValueError, match="ResilienceSpec"):
            solve(fresh_problem(), RHS_2D,
                  spec=SolveSpec(solver="block_pcg",
                                 resilience=ResilienceSpec()))

    def test_pcg_rejects_block_spec(self):
        with pytest.raises(ValueError, match="BlockSpec"):
            solve(fresh_problem(RHS_1D),
                  spec=SolveSpec(solver="pcg", block=BlockSpec()))

    def test_block_spec_n_cols_mismatch_rejected(self):
        with pytest.raises(ValueError, match="n_cols=2"):
            solve(fresh_problem(), RHS_2D,
                  spec=SolveSpec(block=BlockSpec(n_cols=2)))

    def test_1d_rhs_through_block_solver_as_k1(self):
        result = solve(fresh_problem(RHS_1D),
                       spec=SolveSpec(solver="block_pcg"))
        reference = solve(fresh_problem(RHS_1D))
        assert np.array_equal(result.x[:, 0], reference.x)


class TestRegistry:
    def test_builtin_names_registered(self):
        assert SOLVERS.names() == ("block_pcg", "pcg", "resilient_block_pcg",
                                   "resilient_pcg")

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            SOLVERS.get("does_not_exist")
        message = str(excinfo.value)
        assert "does_not_exist" in message
        for name in SOLVERS.names():
            assert name in message

    def test_unknown_name_through_solve(self):
        with pytest.raises(ValueError, match="available"):
            solve(fresh_problem(RHS_1D), spec=SolveSpec(solver="nope"))

    def test_decorator_registration_and_case_insensitivity(self):
        registry = SolverRegistry()

        @registry.register("MySolver")
        def build(problem, rhs, precond, spec):
            return "built"

        assert registry.names() == ("mysolver",)
        assert registry.get("MYSOLVER") is build
        assert registry.build("mysolver", None, None, None,
                              SolveSpec()) == "built"

    def test_make_preconditioner_unknown_name_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            make_preconditioner("does_not_exist")
        message = str(excinfo.value)
        assert "does_not_exist" in message
        assert "block_jacobi" in message and "ssor" in message

    def test_make_preconditioner_rejects_none(self):
        # str(None) == "None" must not silently hit the "none" alias.
        with pytest.raises(TypeError, match="must be a string"):
            make_preconditioner(None)

    def test_preconditioners_tuple_sees_late_registrations(self):
        from repro import precond
        from repro.precond import factory

        @precond.register_preconditioner("facade_test_only", "test stub")
        def build(**kwargs):
            return make_preconditioner("identity")

        try:
            assert "facade_test_only" in precond.PRECONDITIONERS
            assert "facade_test_only" in factory.PRECONDITIONERS
        finally:
            del factory._REGISTRY["facade_test_only"]
        assert "facade_test_only" not in precond.PRECONDITIONERS


class TestProblemCaches:
    def test_global_operator_cached_until_structure_changes(self):
        problem = fresh_problem(RHS_1D)
        first = problem.global_operator()
        assert problem.global_operator() is first
        problem.matrix.restore_block_to_node(0, charge=False)
        rebuilt = problem.global_operator()
        assert rebuilt is not first
        assert (rebuilt != first).nnz == 0  # same values, fresh assembly

    def test_preconditioner_cached_per_name_and_options(self):
        problem = fresh_problem(RHS_1D)
        p1 = problem.resolve_preconditioner("block_jacobi")
        assert problem.resolve_preconditioner("block_jacobi") is p1
        assert problem.resolve_preconditioner("jacobi") is not p1
        omega = problem.resolve_preconditioner("ssor", omega=1.3)
        assert problem.resolve_preconditioner("ssor", omega=1.4) is not omega
        assert problem.resolve_preconditioner("ssor", omega=1.3) is omega

    def test_preconditioner_cache_invalidated_on_structure_change(self):
        problem = fresh_problem(RHS_1D)
        p1 = problem.resolve_preconditioner("block_jacobi")
        problem.matrix.restore_block_to_node(0, charge=False)
        assert problem.resolve_preconditioner("block_jacobi") is not p1

    def test_instance_preconditioner_set_up_and_passed_through(self):
        problem = fresh_problem(RHS_1D)
        instance = make_preconditioner("jacobi")
        assert problem.resolve_preconditioner(instance) is instance
        assert instance.is_set_up

    def test_repeated_solves_reuse_one_preconditioner(self):
        problem = fresh_problem(RHS_1D)
        first = solve(problem)
        second = solve(problem)
        assert np.array_equal(first.x, second.x)
        assert len(problem._precond_cache) == 1


class TestDeprecatedShims:
    def test_reference_solve_warns_and_matches_facade(self):
        shim_problem = fresh_problem(RHS_1D)
        with pytest.warns(DeprecationWarning, match="reference_solve"):
            via_shim = reference_solve(shim_problem,
                                       preconditioner="block_jacobi")
        facade_problem = fresh_problem(RHS_1D)
        via_facade = solve(facade_problem, spec=SolveSpec(solver="pcg"))
        assert np.array_equal(via_shim.x, via_facade.x)
        assert via_shim.residual_norms == via_facade.residual_norms
        assert via_shim.simulated_time == via_facade.simulated_time
        assert ledger_state(shim_problem) == ledger_state(facade_problem)

    def test_resilient_solve_warns_and_matches_facade(self):
        shim_problem = fresh_problem(RHS_1D)
        with pytest.warns(DeprecationWarning, match="resilient_solve"):
            via_shim = resilient_solve(shim_problem, phi=2,
                                       preconditioner="block_jacobi",
                                       failures=FAILURES)
        facade_problem = fresh_problem(RHS_1D)
        via_facade = solve(facade_problem,
                           spec=facade_spec("resilient_pcg", False, True))
        assert np.array_equal(via_shim.x, via_facade.x)
        assert via_shim.residual_norms == via_facade.residual_norms
        assert ledger_state(shim_problem) == ledger_state(facade_problem)

    def test_solve_with_failures_warns_and_converges(self):
        with pytest.warns(DeprecationWarning, match="solve_with_failures"):
            result = solve_with_failures(MATRIX, RHS_1D, n_nodes=N_NODES,
                                         phi=1, failures=[(6, [2])], seed=0)
        assert result.converged
        assert len(result.recoveries) == 1


class TestSolveWithFailuresForwarding:
    """Regression: the pre-registry `solve_with_failures` dropped
    `placement`, `local_solver_method` and `local_rtol` on the floor."""

    def run(self, **kwargs):
        with pytest.warns(DeprecationWarning):
            return solve_with_failures(MATRIX, RHS_1D, n_nodes=N_NODES,
                                       phi=2, failures=FAILURES, seed=0,
                                       machine=MachineModel(jitter_rel_std=0.0),
                                       **kwargs)

    def test_placement_forwarded(self):
        result = self.run(placement=BackupPlacement.NEXT_RANKS)
        assert result.info["placement"] == "next_ranks"
        assert self.run().info["placement"] == "paper"

    def test_local_solver_method_forwarded_and_changes_behavior(self):
        direct = self.run(local_solver_method="direct")
        stats = [s for r in direct.recoveries for s in r.local_solve_stats]
        assert stats and all(s.method == "direct" for s in stats)
        default = self.run()
        default_stats = [s for r in default.recoveries
                         for s in r.local_solve_stats]
        assert default_stats
        assert all(s.method == "pcg_ilu" for s in default_stats)

    def test_local_rtol_forwarded_and_changes_behavior(self):
        loose = self.run(local_solver_method="pcg_jacobi", local_rtol=1e-1)
        tight = self.run(local_solver_method="pcg_jacobi", local_rtol=1e-14)
        loose_iters = sum(s.iterations for r in loose.recoveries
                          for s in r.local_solve_stats)
        tight_iters = sum(s.iterations for r in tight.recoveries
                          for s in r.local_solve_stats)
        assert loose_iters < tight_iters

    def test_matches_direct_construction_with_same_options(self):
        shim = self.run(placement=BackupPlacement.NEXT_RANKS,
                        local_solver_method="direct")
        problem = distribute_problem(MATRIX, RHS_1D, n_nodes=N_NODES,
                                     machine=MachineModel(jitter_rel_std=0.0),
                                     seed=0)
        precond = make_preconditioner("block_jacobi")
        precond.setup(MATRIX, problem.partition)
        direct = ResilientPCG(
            problem.matrix, problem.rhs, precond, phi=2,
            placement=BackupPlacement.NEXT_RANKS,
            failure_injector=FailureInjector(list(FAILURES)),
            local_solver_method="direct",
            context=problem.context,
        ).solve()
        assert np.array_equal(shim.x, direct.x)
        assert shim.residual_norms == direct.residual_norms
        assert shim.simulated_time == direct.simulated_time


class TestFusedReductions:
    def test_fused_block_solve_bit_identical_with_fewer_collectives(self):
        problem = fresh_problem()
        plain = solve(problem, RHS_2D)
        fused_problem = fresh_problem()
        fused = solve(fused_problem, RHS_2D, fuse_reductions=True)
        assert np.array_equal(plain.x, fused.x)
        assert plain.residual_histories == fused.residual_histories
        assert fused.info["fuse_reductions"] is True
        assert fused.info["n_reductions"] < plain.info["n_reductions"]

    def test_unfused_k1_keeps_pcg_charge_equality(self):
        """The default (unfused) mode preserves the k = 1 ledger contract."""
        block_problem = fresh_problem(RHS_1D)
        solve(block_problem, spec=SolveSpec(solver="block_pcg"))
        pcg_problem = fresh_problem(RHS_1D)
        solve(pcg_problem, spec=SolveSpec(solver="pcg"))
        assert ledger_state(block_problem) == ledger_state(pcg_problem)
