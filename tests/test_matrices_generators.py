"""Tests for the SPD matrix generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import generators as gen
from repro.matrices.properties import is_symmetric
from repro.utils.validation import check_spd_sample


def assert_spd(matrix):
    check_spd_sample(matrix, n_probes=3)


class TestStencils:
    def test_poisson_1d(self):
        a = gen.poisson_1d(10)
        assert a.shape == (10, 10)
        assert a.nnz == 28
        assert_spd(a)

    def test_poisson_2d_shape_and_nnz_per_row(self):
        a = gen.poisson_2d(12)
        assert a.shape == (144, 144)
        assert a.nnz / 144 <= 5.0
        assert_spd(a)

    def test_poisson_2d_rectangular(self):
        a = gen.poisson_2d(6, 9)
        assert a.shape == (54, 54)

    def test_poisson_2d_9point(self):
        a = gen.poisson_2d_9point(10)
        assert a.shape == (100, 100)
        per_row = a.nnz / 100
        assert 6.0 < per_row <= 9.0
        assert_spd(a)

    def test_poisson_3d(self):
        a = gen.poisson_3d(5)
        assert a.shape == (125, 125)
        assert a.nnz / 125 <= 7.0
        assert_spd(a)

    def test_anisotropic_diffusion(self):
        a = gen.anisotropic_diffusion_2d(10, epsilon=0.01, theta=np.pi / 6)
        assert a.shape == (100, 100)
        assert is_symmetric(a)
        assert_spd(a)

    def test_anisotropic_invalid_epsilon(self):
        with pytest.raises(ValueError):
            gen.anisotropic_diffusion_2d(5, epsilon=0.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            gen.poisson_1d(0)


class TestIrregular:
    def test_graph_laplacian_properties(self):
        a = gen.graph_laplacian_spd(300, avg_degree=4.0, seed=0)
        assert a.shape == (300, 300)
        assert is_symmetric(a)
        assert_spd(a)
        # roughly avg_degree + 1 non-zeros per row
        assert 3.0 < a.nnz / 300 < 8.0

    def test_graph_laplacian_deterministic(self):
        a = gen.graph_laplacian_spd(100, seed=7)
        b = gen.graph_laplacian_spd(100, seed=7)
        assert (a != b).nnz == 0

    def test_graph_laplacian_seed_changes_pattern(self):
        a = gen.graph_laplacian_spd(100, seed=1)
        b = gen.graph_laplacian_spd(100, seed=2)
        assert (a != b).nnz > 0

    def test_unstructured_mesh(self):
        a = gen.unstructured_mesh_spd(400, target_nnz_per_row=7.0, seed=0)
        assert is_symmetric(a)
        assert_spd(a)
        assert 4.0 < a.nnz / 400 < 10.0

    def test_unstructured_mesh_invalid_target(self):
        with pytest.raises(ValueError):
            gen.unstructured_mesh_spd(100, target_nnz_per_row=2.0)

    def test_graph_laplacian_too_small(self):
        with pytest.raises(ValueError):
            gen.graph_laplacian_spd(1)


class TestStructural:
    def test_elasticity_shape(self):
        a = gen.elasticity_3d(4, 4, 4, dofs_per_node=3)
        assert a.shape == (192, 192)
        assert is_symmetric(a)
        assert_spd(a)

    def test_elasticity_wide_rows(self):
        a = gen.elasticity_3d(5, 5, 5, dofs_per_node=3)
        # interior vertices couple to 27 neighbours x 3 dofs
        assert a.nnz / a.shape[0] > 30

    def test_elasticity_single_dof(self):
        a = gen.elasticity_3d(4, 4, 4, dofs_per_node=1)
        assert a.shape == (64, 64)
        assert_spd(a)

    def test_elasticity_invalid_params(self):
        with pytest.raises(ValueError):
            gen.elasticity_3d(4, dofs_per_node=0)
        with pytest.raises(ValueError):
            gen.elasticity_3d(4, neighbor_radius=0)
        with pytest.raises(ValueError):
            gen.elasticity_3d(4, coupling=1.5)


class TestRandomSPD:
    def test_banded(self):
        a = gen.banded_spd(200, half_bandwidth=10, seed=0)
        assert is_symmetric(a)
        assert_spd(a)
        coo = sp.coo_matrix(a)
        assert np.max(np.abs(coo.row - coo.col)) <= 10

    def test_banded_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            gen.banded_spd(10, half_bandwidth=10)
        with pytest.raises(ValueError):
            gen.banded_spd(10, half_bandwidth=0)

    def test_diagonally_dominant(self):
        a = gen.diagonally_dominant_spd(150, nnz_per_row=6, seed=0)
        assert is_symmetric(a)
        assert_spd(a)

    def test_diagonally_dominant_deterministic(self):
        a = gen.diagonally_dominant_spd(50, seed=3)
        b = gen.diagonally_dominant_spd(50, seed=3)
        assert (a != b).nnz == 0


class TestGridDimensions:
    def test_2d(self):
        nx, ny = gen.grid_dimensions_for(400, dims=2)
        assert nx == ny == 20

    def test_3d_with_dofs(self):
        dims = gen.grid_dimensions_for(3000, dims=3, dofs_per_node=3)
        assert len(dims) == 3
        assert abs(np.prod(dims) * 3 - 3000) / 3000 < 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            gen.grid_dimensions_for(0)
