"""Tests for the resilient PCG driver (failure handling, overheads, overlaps)."""

import numpy as np
import pytest

from repro.cluster import (
    FailureEvent,
    FailureInjector,
    MachineModel,
    Phase,
    UnrecoverableStateError,
)
from repro.core.api import distribute_problem, reference_solve, resilient_solve
from repro.core.redundancy import BackupPlacement
from repro.core.resilient_pcg import ResilientPCG
from repro.matrices import poisson_2d
from repro.precond import make_preconditioner


@pytest.fixture
def matrix():
    return poisson_2d(20)  # n = 400


def fresh_problem(matrix, n_nodes=5, seed=0):
    return distribute_problem(matrix, n_nodes=n_nodes, seed=seed,
                              machine=MachineModel(jitter_rel_std=0.0))


class TestFailureFree:
    def test_same_solution_as_reference(self, matrix):
        reference = reference_solve(fresh_problem(matrix),
                                    preconditioner="block_jacobi")
        resilient = resilient_solve(fresh_problem(matrix), phi=3,
                                    preconditioner="block_jacobi")
        assert resilient.converged
        assert resilient.iterations == reference.iterations
        assert np.allclose(resilient.x, reference.x, rtol=1e-12, atol=1e-14)

    def test_undisturbed_overhead_grows_with_phi(self, matrix):
        reference = reference_solve(fresh_problem(matrix),
                                    preconditioner="block_jacobi")
        times = {}
        for phi in (1, 3):
            result = resilient_solve(fresh_problem(matrix), phi=phi,
                                     preconditioner="block_jacobi")
            times[phi] = result.simulated_time
        assert times[1] > reference.simulated_time
        assert times[3] > times[1]

    def test_redundancy_phase_charged(self, matrix):
        result = resilient_solve(fresh_problem(matrix), phi=2,
                                 preconditioner="block_jacobi")
        assert result.time_breakdown.get(Phase.REDUNDANCY_COMM, 0.0) > 0

    def test_phi_zero_equals_reference_cost_model(self, matrix):
        reference = reference_solve(fresh_problem(matrix),
                                    preconditioner="block_jacobi")
        result = resilient_solve(fresh_problem(matrix), phi=0,
                                 preconditioner="block_jacobi")
        assert result.iterations == reference.iterations
        assert result.simulated_time == pytest.approx(reference.simulated_time,
                                                      rel=1e-6)

    def test_info_fields(self, matrix):
        result = resilient_solve(fresh_problem(matrix), phi=2,
                                 preconditioner="block_jacobi",
                                 placement=BackupPlacement.NEXT_RANKS)
        assert result.info["phi"] == 2
        assert result.info["placement"] == "next_ranks"
        assert "redundancy" in result.info


class TestWithFailures:
    def test_single_failure(self, matrix):
        reference = reference_solve(fresh_problem(matrix),
                                    preconditioner="block_jacobi")
        result = resilient_solve(fresh_problem(matrix), phi=1,
                                 preconditioner="block_jacobi",
                                 failures=[(10, [2])])
        assert result.converged
        assert result.n_failures_recovered == 1
        assert np.allclose(result.x, reference.x, atol=1e-7)

    def test_three_simultaneous_failures(self, matrix):
        result = resilient_solve(fresh_problem(matrix), phi=3,
                                 preconditioner="block_jacobi",
                                 failures=[(12, [1, 2, 3])])
        assert result.converged
        assert result.n_failures_recovered == 3
        assert abs(result.relative_residual_deviation) < 1e-5

    def test_two_separate_failure_events(self, matrix):
        result = resilient_solve(fresh_problem(matrix), phi=2,
                                 preconditioner="block_jacobi",
                                 failures=[(5, [0]), (15, [4])])
        assert result.converged
        assert len(result.recoveries) == 2

    def test_repeated_failure_of_same_rank(self, matrix):
        result = resilient_solve(fresh_problem(matrix), phi=1,
                                 preconditioner="block_jacobi",
                                 failures=[(5, [2]), (20, [2])])
        assert result.converged
        assert len(result.recoveries) == 2

    def test_failure_increases_runtime(self, matrix):
        undisturbed = resilient_solve(fresh_problem(matrix), phi=3,
                                      preconditioner="block_jacobi")
        disturbed = resilient_solve(fresh_problem(matrix), phi=3,
                                    preconditioner="block_jacobi",
                                    failures=[(10, [1, 2, 3])])
        assert disturbed.simulated_time > undisturbed.simulated_time
        assert disturbed.simulated_recovery_time > 0

    def test_failures_beyond_phi_raise(self, matrix):
        with pytest.raises(UnrecoverableStateError):
            resilient_solve(fresh_problem(matrix), phi=1,
                            preconditioner="block_jacobi",
                            failures=[(10, [1, 2, 3])])

    def test_failure_event_objects_accepted(self, matrix):
        result = resilient_solve(
            fresh_problem(matrix), phi=2, preconditioner="block_jacobi",
            failures=[FailureEvent(8, (0, 1), label="switch outage")],
        )
        assert result.converged


class TestOverlappingFailures:
    def test_overlap_restarts_reconstruction(self, matrix):
        problem = fresh_problem(matrix, n_nodes=6)
        precond = make_preconditioner("block_jacobi")
        precond.setup(problem.matrix.to_global(), problem.partition)
        injector = FailureInjector([
            FailureEvent(10, (1, 2)),
            FailureEvent(10, (4,), during_recovery_of=0),
        ])
        solver = ResilientPCG(problem.matrix, problem.rhs, precond, phi=3,
                              failure_injector=injector,
                              context=problem.context)
        result = solver.solve()
        assert result.converged
        assert len(result.recoveries) == 1
        report = result.recoveries[0]
        assert report.restarts == 1
        assert sorted(report.failed_ranks) == [1, 2, 4]
        assert any("overlapping" in note for note in report.notes)

    def test_overlap_recovers_exactly(self, matrix):
        reference = reference_solve(fresh_problem(matrix, n_nodes=6),
                                    preconditioner="block_jacobi")
        problem = fresh_problem(matrix, n_nodes=6)
        precond = make_preconditioner("block_jacobi")
        precond.setup(problem.matrix.to_global(), problem.partition)
        injector = FailureInjector([
            FailureEvent(10, (0,)),
            FailureEvent(10, (3,), during_recovery_of=0),
        ])
        solver = ResilientPCG(problem.matrix, problem.rhs, precond, phi=2,
                              failure_injector=injector, context=problem.context)
        result = solver.solve()
        assert result.converged
        assert np.allclose(result.x, reference.x, atol=1e-7)


class TestValidation:
    def test_negative_phi_rejected(self, matrix):
        problem = fresh_problem(matrix)
        precond = make_preconditioner("block_jacobi")
        precond.setup(problem.matrix.to_global(), problem.partition)
        with pytest.raises(ValueError):
            ResilientPCG(problem.matrix, problem.rhs, precond, phi=-1)

    def test_phi_at_least_node_count_rejected(self, matrix):
        problem = fresh_problem(matrix)
        precond = make_preconditioner("block_jacobi")
        precond.setup(problem.matrix.to_global(), problem.partition)
        with pytest.raises(ValueError):
            ResilientPCG(problem.matrix, problem.rhs, precond, phi=5)


class TestCooperativeHookChain:
    """The ESR mixin must pass every hook on to the next class in the MRO.

    ``ResilientPCG`` is ``EsrResilienceMixin`` stacked on the plain solver;
    a custom subclass may add its own hook participants *below* the mixin.
    If the mixin's overrides dropped ``super().<hook>()`` (lint rule R010),
    those participants would silently never run.
    """

    def _probe_solver(self, matrix):
        from repro.core.pcg import DistributedPCG
        from repro.core.resilient_pcg import EsrResilienceMixin

        fired = set()

        class ProbePCG(DistributedPCG):
            def _on_setup(self):
                fired.add("_on_setup")
                super()._on_setup()

            def _after_spmv(self, iteration):
                fired.add("_after_spmv")
                super()._after_spmv(iteration)

            def _handle_failures(self, iteration):
                fired.add("_handle_failures")
                return super()._handle_failures(iteration)

            def _after_iteration(self, iteration):
                fired.add("_after_iteration")
                super()._after_iteration(iteration)

        class ProbeResilient(EsrResilienceMixin, ProbePCG):
            vector_prefix = "probe_resilient"

            def __init__(self, matrix, rhs, preconditioner, **kwargs):
                super().__init__(matrix, rhs, preconditioner, **kwargs)
                self._init_resilience(
                    phi=1, placement=BackupPlacement.PAPER,
                    failure_injector=None,
                    local_solver_method="pcg_ilu", local_rtol=1e-14,
                    reconstruction_form=None)

        problem = fresh_problem(matrix)
        precond = make_preconditioner("block_jacobi")
        precond.setup(problem.matrix.to_global(), problem.partition)
        solver = ProbeResilient(problem.matrix, problem.rhs, precond,
                                context=problem.context)
        return solver, fired

    def test_mixin_hooks_chain_past_the_mixin(self, matrix):
        solver, fired = self._probe_solver(matrix)
        result = solver.solve()
        assert result.converged
        # Every probe hook below the ESR mixin in the MRO observed the
        # protocol: the mixin chained each override through super().
        assert fired == {"_on_setup", "_after_spmv", "_handle_failures",
                         "_after_iteration"}
