"""Batching-policy registry and the built-in policies.

Covers the policy contract of :mod:`repro.service.policies` -- disjoint
batches, FIFO member order, ``k_max`` respected, drain flushes everything --
for the registered policies ``"fifo_window"`` and ``"greedy_width"`` (the
string literals double as the R003 registered-name coverage).
"""

from __future__ import annotations

import pytest

from repro.service import (
    BATCHING_POLICIES,
    BatchingPolicy,
    BatchingPolicyRegistry,
    register_batching_policy,
)
from repro.service.jobs import JobHandle, ServiceRequest
from repro.service.policies import fifo_window, greedy_width


def make_request(seq, key="k", *, coalescable=True, enqueued_at=0.0):
    return ServiceRequest(
        seq=seq, matrix_id="m", rhs=None, spec=None, key=key,
        coalescable=coalescable, tenant="t",
        handle=JobHandle(seq, "m", "t"), enqueued_at=enqueued_at)


def seqs(batches):
    return [[req.seq for req in batch] for batch in batches]


# -- registry ------------------------------------------------------------------

class TestRegistry:
    def test_builtin_names_registered(self):
        names = BATCHING_POLICIES.names()
        assert "fifo_window" in names
        assert "greedy_width" in names
        assert names == tuple(sorted(names))

    def test_get_returns_policy_wrapper(self):
        policy = BATCHING_POLICIES.get("fifo_window")
        assert isinstance(policy, BatchingPolicy)
        assert policy.name == "fifo_window"
        assert policy.fn is fifo_window

    def test_get_is_case_insensitive(self):
        assert BATCHING_POLICIES.get("GREEDY_WIDTH").fn is greedy_width

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="fifo_window"):
            BATCHING_POLICIES.get("nope")

    def test_register_decorator_on_fresh_registry(self):
        registry = BatchingPolicyRegistry()

        @registry.register("mine", "test policy")
        def mine(pending, *, now, window_s, k_max, drain=False):
            return [pending] if pending else []

        assert registry.names() == ("mine",)
        assert registry.get("mine").description == "test policy"
        # The decorator returns the function unchanged.
        assert mine([], now=0.0, window_s=0.0, k_max=1) == []

    def test_default_decorator_targets_default_registry(self):
        assert register_batching_policy.__self__ is BATCHING_POLICIES


# -- shared contract -----------------------------------------------------------

@pytest.mark.parametrize("policy_name", ["fifo_window", "greedy_width"])
class TestPolicyContract:
    def test_empty_queue_yields_no_batches(self, policy_name):
        policy = BATCHING_POLICIES.get(policy_name)
        assert policy.select([], now=10.0, window_s=1.0, k_max=4) == []

    def test_batches_disjoint_and_bounded(self, policy_name):
        policy = BATCHING_POLICIES.get(policy_name)
        pending = [make_request(i, key="a" if i % 2 else "b")
                   for i in range(11)]
        batches = policy.select(pending, now=100.0, window_s=1.0, k_max=3)
        seen = [req.seq for batch in batches for req in batch]
        assert len(seen) == len(set(seen))
        assert all(len(batch) <= 3 for batch in batches)

    def test_members_in_fifo_order(self, policy_name):
        policy = BATCHING_POLICIES.get(policy_name)
        pending = [make_request(i) for i in range(9)]
        batches = policy.select(pending, now=100.0, window_s=1.0, k_max=4)
        for batch in batches:
            order = [req.seq for req in batch]
            assert order == sorted(order)

    def test_drain_flushes_everything(self, policy_name):
        policy = BATCHING_POLICIES.get(policy_name)
        pending = [make_request(i, key=f"k{i % 3}", enqueued_at=99.9)
                   for i in range(7)]
        batches = policy.select(pending, now=100.0, window_s=60.0, k_max=4,
                                drain=True)
        assert sorted(req.seq for b in batches for req in b) == list(range(7))

    def test_keys_never_mix(self, policy_name):
        policy = BATCHING_POLICIES.get(policy_name)
        pending = [make_request(i, key=f"k{i % 2}") for i in range(8)]
        batches = policy.select(pending, now=100.0, window_s=0.0, k_max=8)
        for batch in batches:
            assert len({req.key for req in batch}) == 1

    def test_non_coalescable_dispatch_alone(self, policy_name):
        policy = BATCHING_POLICIES.get(policy_name)
        pending = [make_request(0), make_request(1, coalescable=False),
                   make_request(2)]
        batches = policy.select(pending, now=100.0, window_s=0.0, k_max=8)
        solo = [b for b in batches if any(not r.coalescable for r in b)]
        assert solo and all(len(b) == 1 for b in solo)

    def test_deterministic_given_same_queue(self, policy_name):
        policy = BATCHING_POLICIES.get(policy_name)
        pending = [make_request(i, key=f"k{i % 3}", enqueued_at=0.1 * i)
                   for i in range(10)]
        first = seqs(policy.select(list(pending), now=5.0, window_s=1.0,
                                   k_max=4))
        second = seqs(policy.select(list(pending), now=5.0, window_s=1.0,
                                    k_max=4))
        assert first == second


# -- fifo_window ---------------------------------------------------------------

class TestFifoWindow:
    def test_waits_inside_window(self):
        pending = [make_request(0, enqueued_at=10.0)]
        assert fifo_window(pending, now=10.5, window_s=1.0, k_max=4) == []

    def test_dispatches_after_window_expiry(self):
        pending = [make_request(0, enqueued_at=10.0)]
        batches = fifo_window(pending, now=11.0, window_s=1.0, k_max=4)
        assert seqs(batches) == [[0]]

    def test_full_batch_dispatches_before_expiry(self):
        pending = [make_request(i, enqueued_at=10.0) for i in range(4)]
        batches = fifo_window(pending, now=10.1, window_s=60.0, k_max=4)
        assert seqs(batches) == [[0, 1, 2, 3]]

    def test_overflow_splits_deterministically(self):
        # 10 key-mates with k_max=4: the expired head drains as 4+4+2 in
        # strict FIFO order.
        pending = [make_request(i, enqueued_at=0.0) for i in range(10)]
        batches = fifo_window(pending, now=100.0, window_s=1.0, k_max=4)
        assert seqs(batches) == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_young_head_blocks_younger_requests(self):
        # Nothing overtakes the unexpired head, even a full younger group.
        pending = [make_request(0, key="a", enqueued_at=10.0)] + [
            make_request(i, key="b", enqueued_at=10.0) for i in range(1, 5)]
        assert fifo_window(pending, now=10.2, window_s=1.0, k_max=4) == []

    def test_expired_head_releases_queue(self):
        pending = [make_request(0, key="a", enqueued_at=0.0)] + [
            make_request(i, key="b", enqueued_at=9.9) for i in range(1, 5)]
        batches = fifo_window(pending, now=10.0, window_s=1.0, k_max=4)
        assert seqs(batches) == [[0], [1, 2, 3, 4]]

    def test_non_coalescable_head_dispatches_immediately(self):
        pending = [make_request(0, coalescable=False, enqueued_at=10.0)]
        batches = fifo_window(pending, now=10.0, window_s=60.0, k_max=4)
        assert seqs(batches) == [[0]]


# -- greedy_width --------------------------------------------------------------

class TestGreedyWidth:
    def test_widest_group_first(self):
        pending = [make_request(0, key="narrow", enqueued_at=0.0)] + [
            make_request(i, key="wide", enqueued_at=0.0)
            for i in range(1, 4)]
        batches = greedy_width(pending, now=100.0, window_s=1.0, k_max=8)
        assert seqs(batches) == [[1, 2, 3], [0]]

    def test_full_chunks_ship_before_expiry(self):
        pending = [make_request(i, enqueued_at=10.0) for i in range(9)]
        batches = greedy_width(pending, now=10.0, window_s=60.0, k_max=4)
        # Two full chunks dispatch now; the remainder waits out its window.
        assert seqs(batches) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_remainder_dispatches_after_expiry(self):
        pending = [make_request(i, enqueued_at=10.0) for i in range(9)]
        batches = greedy_width(pending, now=70.1, window_s=60.0, k_max=4)
        assert seqs(batches) == [[0, 1, 2, 3], [4, 5, 6, 7], [8]]

    def test_width_ties_broken_by_oldest(self):
        pending = [make_request(0, key="b"), make_request(1, key="a")]
        batches = greedy_width(pending, now=100.0, window_s=1.0, k_max=8)
        assert seqs(batches) == [[0], [1]]
