"""Tests for the declarative solver configuration (`repro.core.spec`).

Contract: every spec validates on construction, round-trips through
``to_dict``/``from_dict`` (including through an actual JSON encode/decode),
``with_overrides`` routes extension fields to the right sub-spec, and
``resolved_solver`` implements the documented auto-selection rules.
"""

import json

import pytest

from repro.cluster import FailureEvent
from repro.core import BlockSpec, ResilienceSpec, SolveSpec
from repro.core.redundancy import BackupPlacement
from repro.core.spec import build_failure_events
from repro.precond import make_preconditioner
from repro.precond.base import PreconditionerForm


class TestValidation:
    def test_defaults_are_the_paper_reference(self):
        spec = SolveSpec()
        assert spec.solver is None
        assert spec.rtol == 1e-8
        assert spec.atol == 0.0
        assert spec.max_iterations is None
        assert spec.overlap_spmv is False
        assert spec.engine is True
        assert spec.preconditioner == "block_jacobi"
        assert spec.resilience is None
        assert spec.block is None

    @pytest.mark.parametrize("kwargs", [
        {"rtol": -1e-8},
        {"atol": -1.0},
        {"max_iterations": 0},
        {"max_iterations": -3},
    ])
    def test_bad_solve_spec_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SolveSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"phi": -1},
        {"local_rtol": 0.0},
        {"local_rtol": -1e-14},
    ])
    def test_bad_resilience_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceSpec(**kwargs)

    @pytest.mark.parametrize("n_cols", [0, -2])
    def test_bad_block_fields_rejected(self, n_cols):
        with pytest.raises(ValueError):
            BlockSpec(n_cols=n_cols)

    def test_failure_tuples_normalised_to_events(self):
        spec = ResilienceSpec(failures=[(10, 3), (20, [4, 5])])
        assert all(isinstance(e, FailureEvent) for e in spec.failures)
        assert spec.failures[0].iteration == 10
        assert spec.failures[0].ranks == (3,)
        assert spec.failures[1].ranks == (4, 5)

    def test_placement_coerced_from_string(self):
        spec = ResilienceSpec(placement="next_ranks")
        assert spec.placement is BackupPlacement.NEXT_RANKS

    def test_reconstruction_form_coerced_from_string(self):
        value = PreconditionerForm.FORWARD.value
        spec = ResilienceSpec(reconstruction_form=value)
        assert spec.reconstruction_form is PreconditionerForm.FORWARD

    def test_nested_specs_coerced_from_mappings(self):
        spec = SolveSpec(resilience={"phi": 2}, block={"n_cols": 3})
        assert isinstance(spec.resilience, ResilienceSpec)
        assert spec.resilience.phi == 2
        assert isinstance(spec.block, BlockSpec)
        assert spec.block.n_cols == 3

    def test_build_failure_events_passthrough(self):
        event = FailureEvent(5, (1,), label="x")
        assert build_failure_events([event]) == [event]


#: Pinned snapshots of the registry contents.  ``repro.lint`` rule R003
#: requires every registered name to appear as a literal in the test suite;
#: these lists (checked against the live registries below) are that
#: round-trip coverage -- extend them when registering a new name.
REGISTERED_SOLVER_NAMES = [
    "block_pcg", "pcg", "resilient_block_pcg", "resilient_pcg",
]
REGISTERED_PRECONDITIONER_NAMES = [
    "block_jacobi", "block_jacobi_ic", "block_jacobi_ilu", "identity",
    "jacobi", "none", "split_ic0", "ssor",
]
REGISTERED_REDUNDANCY_SCHEME_NAMES = ["copies", "rs_parity"]


class TestRegistryRoundTrip:
    """Every registered name stays reachable through a spec round-trip."""

    def test_pinned_solver_names_match_registry(self):
        from repro.core.registry import SOLVERS
        assert sorted(SOLVERS.names()) == REGISTERED_SOLVER_NAMES

    def test_pinned_preconditioner_names_match_registry(self):
        from repro.precond.factory import registered_preconditioners
        assert sorted(registered_preconditioners()) == \
            REGISTERED_PRECONDITIONER_NAMES

    @pytest.mark.parametrize("name", REGISTERED_SOLVER_NAMES)
    def test_registered_solver_round_trips(self, name):
        spec = SolveSpec(solver=name)
        rebuilt = SolveSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.solver == name

    @pytest.mark.parametrize("name", REGISTERED_PRECONDITIONER_NAMES)
    def test_registered_preconditioner_round_trips(self, name):
        spec = SolveSpec(preconditioner=name)
        rebuilt = SolveSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.preconditioner == name

    @pytest.mark.parametrize("name", REGISTERED_PRECONDITIONER_NAMES)
    def test_registered_preconditioner_builds(self, name):
        preconditioner = make_preconditioner(name)
        assert not preconditioner.is_set_up

    def test_pinned_redundancy_scheme_names_match_registry(self):
        from repro.core.redundancy import REDUNDANCY_SCHEMES
        assert sorted(REDUNDANCY_SCHEMES.names()) == \
            REGISTERED_REDUNDANCY_SCHEME_NAMES

    @pytest.mark.parametrize("name", REGISTERED_REDUNDANCY_SCHEME_NAMES)
    def test_registered_redundancy_scheme_round_trips(self, name):
        spec = SolveSpec(solver="resilient_pcg",
                         resilience=ResilienceSpec(scheme=name))
        rebuilt = SolveSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.resilience.scheme == name

    def test_scheme_name_normalised_to_registry_case(self):
        spec = ResilienceSpec(scheme="RS_Parity",
                              scheme_options={"group_size": 3})
        assert spec.scheme == "rs_parity"
        assert spec.scheme_options == {"group_size": 3}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="redundancy scheme"):
            ResilienceSpec(scheme="raid6")


class TestRoundTrip:
    def full_spec(self):
        return SolveSpec(
            solver="resilient_pcg", rtol=1e-10, atol=1e-30,
            max_iterations=500, overlap_spmv=True, engine=False,
            preconditioner="ssor", preconditioner_options={"omega": 1.3},
            resilience=ResilienceSpec(
                phi=3, placement=BackupPlacement.NEXT_RANKS,
                scheme="rs_parity", scheme_options={"group_size": 3},
                failures=[FailureEvent(20, (2, 3), label="outage"),
                          FailureEvent(20, (5,), during_recovery_of=0)],
                local_solver_method="direct", local_rtol=1e-12,
                reconstruction_form=PreconditionerForm.FORWARD,
            ),
        )

    def test_default_spec_round_trips(self):
        spec = SolveSpec()
        assert SolveSpec.from_dict(spec.to_dict()) == spec

    def test_full_spec_round_trips(self):
        spec = self.full_spec()
        assert SolveSpec.from_dict(spec.to_dict()) == spec

    def test_block_spec_round_trips(self):
        spec = SolveSpec(block=BlockSpec(n_cols=4, fuse_reductions=True))
        assert SolveSpec.from_dict(spec.to_dict()) == spec

    def test_round_trips_through_actual_json(self):
        spec = self.full_spec()
        rebuilt = SolveSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_instance_preconditioner_not_serializable(self):
        spec = SolveSpec(preconditioner=make_preconditioner("jacobi"))
        with pytest.raises(ValueError, match="not\\s+serializable"):
            spec.to_dict()

    @pytest.mark.parametrize("cls", [SolveSpec, ResilienceSpec, BlockSpec])
    def test_unknown_keys_rejected(self, cls):
        with pytest.raises(ValueError, match="unknown"):
            cls.from_dict({"definitely_not_a_field": 1})

    def test_unknown_failure_event_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ResilienceSpec.from_dict(
                {"failures": [{"iteration": 1, "ranks": [0], "oops": 2}]})


class TestWithOverrides:
    def test_top_level_override(self):
        spec = SolveSpec().with_overrides(rtol=1e-6, overlap_spmv=True)
        assert spec.rtol == 1e-6
        assert spec.overlap_spmv is True

    def test_resilience_fields_routed_and_extension_created(self):
        spec = SolveSpec().with_overrides(phi=2, failures=[(10, [1])])
        assert spec.resilience is not None
        assert spec.resilience.phi == 2
        assert spec.resilience.failures[0].ranks == (1,)

    def test_resilience_fields_merge_into_existing_extension(self):
        base = SolveSpec(resilience=ResilienceSpec(
            phi=3, local_solver_method="direct"))
        spec = base.with_overrides(phi=1)
        assert spec.resilience.phi == 1
        assert spec.resilience.local_solver_method == "direct"

    def test_block_fields_routed(self):
        spec = SolveSpec().with_overrides(fuse_reductions=True)
        assert spec.block is not None
        assert spec.block.fuse_reductions is True

    def test_original_spec_unchanged(self):
        base = SolveSpec()
        base.with_overrides(rtol=1e-4, phi=5)
        assert base.rtol == 1e-8
        assert base.resilience is None

    def test_unknown_override_rejected_listing_fields(self):
        with pytest.raises(ValueError) as excinfo:
            SolveSpec().with_overrides(not_a_knob=1)
        message = str(excinfo.value)
        assert "not_a_knob" in message
        assert "rtol" in message and "phi" in message


class TestResolvedSolver:
    def test_plain_default(self):
        assert SolveSpec().resolved_solver() == "pcg"

    def test_resilience_selects_resilient(self):
        spec = SolveSpec(resilience=ResilienceSpec())
        assert spec.resolved_solver() == "resilient_pcg"

    def test_block_extension_selects_block(self):
        spec = SolveSpec(block=BlockSpec())
        assert spec.resolved_solver() == "block_pcg"

    def test_multi_rhs_selects_block(self):
        assert SolveSpec().resolved_solver(multi_rhs=True) == "block_pcg"

    def test_explicit_name_wins(self):
        spec = SolveSpec(solver="pcg", block=BlockSpec())
        assert spec.resolved_solver(multi_rhs=True) == "pcg"
