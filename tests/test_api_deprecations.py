"""Regression tests for the deprecated pre-registry shims.

Pins three properties so the shims cannot rot silently:

* each of ``reference_solve`` / ``resilient_solve`` / ``solve_with_failures``
  emits **exactly one** ``DeprecationWarning`` per call;
* their signatures are pinned with ``inspect.signature`` -- adding a kwarg
  without extending the forwarding test below fails loudly (that is how
  ``solve_with_failures`` once silently dropped ``placement`` /
  ``local_solver_method`` / ``local_rtol``);
* **every** documented kwarg is forwarded into the ``SolveSpec`` (or the
  cluster options) the shim hands to ``repro.solve`` -- asserted against a
  captured call with non-default values for every single parameter.
"""

import inspect
import warnings

import numpy as np
import pytest

import repro.core.api as api
from repro.cluster import MachineModel
from repro.core.api import (
    distribute_problem,
    reference_solve,
    resilient_solve,
    solve_with_failures,
)
from repro.core.redundancy import BackupPlacement
from repro.matrices import poisson_2d

#: Pinned signatures: every documented kwarg of each shim, in order.
PINNED_SIGNATURES = {
    reference_solve: ("problem", "preconditioner", "rtol", "max_iterations"),
    resilient_solve: ("problem", "phi", "preconditioner", "failures",
                      "placement", "rtol", "max_iterations",
                      "local_solver_method", "local_rtol"),
    solve_with_failures: ("matrix", "rhs", "n_nodes", "phi", "failures",
                          "preconditioner", "placement", "rtol",
                          "max_iterations", "local_solver_method",
                          "local_rtol", "machine", "seed"),
}


@pytest.fixture
def problem():
    return distribute_problem(poisson_2d(12), n_nodes=4,
                              machine=MachineModel(jitter_rel_std=0.0))


@pytest.fixture
def captured_solve(monkeypatch):
    """Replace api.solve with a recorder returning a dummy result."""
    calls = []

    def recorder(problem, rhs=None, spec=None, **overrides):
        calls.append({"problem": problem, "rhs": rhs, "spec": spec,
                      "overrides": overrides})
        return "dummy-result"

    monkeypatch.setattr(api, "solve", recorder)
    return calls


class TestSignaturePins:
    @pytest.mark.parametrize("shim", sorted(PINNED_SIGNATURES,
                                            key=lambda f: f.__name__))
    def test_signature_is_pinned(self, shim):
        """A new kwarg must update this pin AND the forwarding test below --
        it cannot be added-and-dropped silently again."""
        assert tuple(inspect.signature(shim).parameters) == \
            PINNED_SIGNATURES[shim]


class TestExactlyOneDeprecationWarning:
    def assert_one_warning(self, caught, name):
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert name in str(deprecations[0].message)
        assert "deprecated" in str(deprecations[0].message)

    def test_reference_solve(self, problem):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = reference_solve(problem)
        self.assert_one_warning(caught, "reference_solve")
        assert result.converged

    def test_resilient_solve(self, problem):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = resilient_solve(problem, phi=1)
        self.assert_one_warning(caught, "resilient_solve")
        assert result.converged

    def test_solve_with_failures(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = solve_with_failures(
                poisson_2d(12), n_nodes=4,
                machine=MachineModel(jitter_rel_std=0.0))
        self.assert_one_warning(caught, "solve_with_failures")
        assert result.converged


class TestEveryKwargForwarded:
    """Call each shim with a non-default value for EVERY documented kwarg and
    assert each one lands in the captured SolveSpec / cluster options."""

    def test_reference_solve_forwards_all(self, problem, captured_solve):
        with pytest.warns(DeprecationWarning):
            reference_solve(problem, preconditioner="jacobi", rtol=1e-5,
                            max_iterations=123)
        (call,) = captured_solve
        spec = call["spec"]
        assert call["problem"] is problem
        assert spec.solver == "pcg"
        assert spec.preconditioner == "jacobi"
        assert spec.rtol == 1e-5
        assert spec.max_iterations == 123

    def test_resilient_solve_forwards_all(self, problem, captured_solve):
        with pytest.warns(DeprecationWarning):
            resilient_solve(
                problem, phi=3, preconditioner="jacobi",
                failures=[(7, [1])], placement=BackupPlacement.NEXT_RANKS,
                rtol=1e-5, max_iterations=321,
                local_solver_method="direct", local_rtol=1e-11,
            )
        (call,) = captured_solve
        spec = call["spec"]
        assert call["problem"] is problem
        assert spec.solver == "resilient_pcg"
        assert spec.preconditioner == "jacobi"
        assert spec.rtol == 1e-5
        assert spec.max_iterations == 321
        res = spec.resilience
        assert res.phi == 3
        assert res.placement is BackupPlacement.NEXT_RANKS
        assert [(e.iteration, list(e.ranks)) for e in res.failures] == \
            [(7, [1])]
        assert res.local_solver_method == "direct"
        assert res.local_rtol == 1e-11

    def test_solve_with_failures_forwards_all(self, captured_solve):
        matrix = poisson_2d(12)
        rhs = np.ones(matrix.shape[0])
        machine = MachineModel(jitter_rel_std=0.0)
        with pytest.warns(DeprecationWarning):
            solve_with_failures(
                matrix, rhs, n_nodes=6, phi=2, failures=[(4, [0, 2])],
                preconditioner="jacobi",
                placement=BackupPlacement.NEXT_RANKS, rtol=1e-6,
                max_iterations=222, local_solver_method="direct",
                local_rtol=1e-12, machine=machine, seed=99,
            )
        (call,) = captured_solve
        spec = call["spec"]
        assert call["problem"] is matrix
        assert call["rhs"] is rhs
        assert call["overrides"] == {"n_nodes": 6, "machine": machine,
                                     "seed": 99}
        assert spec.solver == "resilient_pcg"
        assert spec.preconditioner == "jacobi"
        assert spec.rtol == 1e-6
        assert spec.max_iterations == 222
        res = spec.resilience
        assert res.phi == 2
        assert res.placement is BackupPlacement.NEXT_RANKS
        assert [(e.iteration, list(e.ranks)) for e in res.failures] == \
            [(4, [0, 2])]
        assert res.local_solver_method == "direct"
        assert res.local_rtol == 1e-12
