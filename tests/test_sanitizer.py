"""Tests for SimSan, the runtime cluster sanitizer (`repro.sanitizer`).

Contract: each detector fires on a synthetic violation with structured
context and stays quiet on the corresponding clean pattern; activation is
opt-in (env var, context manager, explicit enable) and nests correctly; the
instrumentation is semantics-preserving -- pre-existing error contracts
(``KeyError`` probes, ``CommunicationError`` size checks) are untouched and
a sanitized solve is bit-identical to an unsanitized one.
"""

import numpy as np
import pytest

import repro
from repro import sanitizer
from repro.cluster import VirtualCluster
from repro.cluster.cost_model import CostLedger, MachineModel, Phase
from repro.cluster.errors import CommunicationError
from repro.sanitizer import DETECTORS, SanitizerError, SimSan, op_window


@pytest.fixture(autouse=True)
def _sanitizer_off_between_tests():
    """Each test starts from a known-off sanitizer and may not leak one.

    Disabling on entry also makes this file behave identically in the
    plain and the ``REPRO_SANITIZE=1`` CI lanes: these tests manage their
    own activation.
    """
    sanitizer.disable()
    yield
    sanitizer.disable()


@pytest.fixture
def cluster():
    return VirtualCluster(4)


def failed_and_replaced(cluster, rank, **payload):
    """Store *payload* on *rank*, then fail and replace the node."""
    memory = cluster.node(rank).memory
    for key, value in payload.items():
        memory[key] = value
    cluster.fail_nodes([rank])
    cluster.replace_nodes([rank])
    return cluster.node(rank)


class TestActivation:
    def test_off_unless_env_armed(self, monkeypatch):
        """With no REPRO_SANITIZE in the environment, import-time arming
        (``enable_from_env``) leaves the sanitizer off."""
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitizer.enable_from_env() is None
        assert not sanitizer.is_active()
        assert sanitizer.active() is None

    def test_enable_disable(self):
        san = sanitizer.enable()
        assert sanitizer.is_active()
        assert sanitizer.active() is san
        sanitizer.disable()
        assert not sanitizer.is_active()

    def test_enable_is_idempotent(self):
        first = sanitizer.enable()
        assert sanitizer.enable() is first

    def test_context_manager_restores_previous_state(self):
        with sanitizer.sanitized() as san:
            assert sanitizer.active() is san
            with sanitizer.sanitized() as inner:
                assert inner is san  # nesting reuses the active instance
        assert not sanitizer.is_active()

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with sanitizer.sanitized():
                raise RuntimeError("boom")
        assert not sanitizer.is_active()

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitizer detector"):
            SimSan(["not_a_detector"])

    def test_detector_subset(self):
        san = SimSan(["uncharged_op"])
        assert san.enabled("uncharged_op")
        assert not san.enabled("use_after_failure")

    @pytest.mark.parametrize("value", ["1", "true", "on", "all"])
    def test_env_activation(self, value):
        san = sanitizer.enable_from_env({"REPRO_SANITIZE": value})
        assert san is not None
        assert san.detectors == frozenset(DETECTORS)

    @pytest.mark.parametrize("environ", [
        {}, {"REPRO_SANITIZE": "0"}, {"REPRO_SANITIZE": "off"},
    ])
    def test_env_off(self, environ):
        assert sanitizer.enable_from_env(environ) is None
        assert not sanitizer.is_active()

    def test_env_detector_subset(self):
        san = sanitizer.enable_from_env(
            {"REPRO_SANITIZE": "uncharged_op, unmatched_send"})
        assert san.detectors == {"uncharged_op", "unmatched_send"}


class TestUseAfterFailure:
    def test_silent_get_of_lost_key_fires(self, cluster):
        node = failed_and_replaced(cluster, 1, blob=np.ones(3))
        with sanitizer.sanitized():
            cluster.fail_nodes([2])  # unrelated rank; tombstones are per-node
            cluster.replace_nodes([2])
        with sanitizer.sanitized():
            pass  # a fresh sanitizer has no tombstones for the old failure
        with sanitizer.sanitized() as san:
            node.memory["blob"] = np.ones(3)
            cluster.fail_nodes([1])
            cluster.replace_nodes([1])
            with pytest.raises(SanitizerError) as excinfo:
                node.memory.get("blob")
        error = excinfo.value
        assert error.detector == "use_after_failure"
        assert error.rank == 1
        assert error.key == "blob"
        assert "SimSan:use_after_failure" in str(error)
        assert san.stats["node_failures"] >= 1

    def test_pop_with_default_fires(self, cluster):
        with sanitizer.sanitized():
            node = failed_and_replaced(cluster, 0, blob=np.ones(2))
            with pytest.raises(SanitizerError):
                node.memory.pop("blob", None)

    def test_fresh_write_resurrects_key(self, cluster):
        with sanitizer.sanitized():
            node = failed_and_replaced(cluster, 1, blob=np.ones(3))
            node.memory["blob"] = np.zeros(3)  # reconstruction restored it
            assert np.array_equal(node.memory.get("blob"), np.zeros(3))

    def test_invalidate_clears_tombstone(self, cluster):
        with sanitizer.sanitized():
            node = failed_and_replaced(cluster, 1, blob=np.ones(3))
            node.memory.invalidate("blob")
            assert node.memory.get("blob") is None  # deliberate scrub

    def test_loud_keyerror_probe_is_not_flagged(self, cluster):
        """Regression: the SpMV engine probes ``memory[key]`` and handles
        the KeyError to allocate missing output blocks on replacements --
        the sanitizer must not convert that loud failure into its own."""
        with sanitizer.sanitized():
            node = failed_and_replaced(cluster, 1, blob=np.ones(3))
            with pytest.raises(KeyError):
                node.memory["blob"]
            with pytest.raises(KeyError):
                node.memory.pop("blob")  # no default: loud, allowed
            assert "blob" not in node.memory  # membership probes allowed

    def test_unlost_missing_key_not_flagged(self, cluster):
        with sanitizer.sanitized():
            memory = cluster.node(0).memory
            assert memory.get("never_written") is None

    def test_detector_can_be_disabled(self, cluster):
        with sanitizer.sanitized(["uncharged_op"]):
            node = failed_and_replaced(cluster, 1, blob=np.ones(3))
            assert node.memory.get("blob") is None

    def test_tombstoned_keys_introspection(self, cluster):
        with sanitizer.sanitized() as san:
            node = failed_and_replaced(cluster, 1, a=np.ones(2), b=np.ones(2))
            assert san.tombstoned_keys(node) == ("a", "b")
            node.memory["a"] = np.zeros(2)
            assert san.tombstoned_keys(node) == ("b",)


class TestUnmatchedSend:
    def test_collective_with_pending_message_fires(self, cluster):
        with sanitizer.sanitized():
            cluster.comm.send(0, 1, np.ones(3))
            with pytest.raises(SanitizerError) as excinfo:
                cluster.comm.allreduce_sum({r: 1.0 for r in range(4)})
            cluster.comm.recv(1, 0)  # drain for the clean-shutdown check
        assert excinfo.value.detector == "unmatched_send"
        assert excinfo.value.op == "allreduce_sum"

    def test_drained_mailboxes_pass(self, cluster):
        with sanitizer.sanitized():
            cluster.comm.send(0, 1, np.ones(3))
            cluster.comm.recv(1, 0)
            cluster.comm.allreduce_sum({r: 1.0 for r in range(4)})

    def test_sanitized_exit_with_pending_message_fires(self, cluster):
        with pytest.raises(SanitizerError) as excinfo:
            with sanitizer.sanitized():
                cluster.comm.send(0, 1, np.ones(3))
        assert excinfo.value.detector == "unmatched_send"

    def test_barrier_checks_boundary(self, cluster):
        with sanitizer.sanitized():
            cluster.comm.send(2, 3, np.ones(2))
            with pytest.raises(SanitizerError):
                cluster.comm.barrier()
            cluster.comm.recv(3, 2)  # drain for the clean-shutdown check


class TestAllreduceUniformity:
    def test_same_size_different_shape_fires(self, cluster):
        contributions = {0: np.ones((2, 2)), 1: np.ones(4),
                         2: np.ones((2, 2)), 3: np.ones((2, 2))}
        with sanitizer.sanitized():
            with pytest.raises(SanitizerError) as excinfo:
                cluster.comm.allreduce_sum(contributions)
        assert excinfo.value.detector == "allreduce_uniformity"

    def test_uniform_shapes_pass(self, cluster):
        with sanitizer.sanitized():
            total = cluster.comm.allreduce_sum(
                {r: np.full((2, 2), float(r)) for r in range(4)})
        assert np.array_equal(total, np.full((2, 2), 6.0))

    def test_size_mismatch_stays_communication_error(self, cluster):
        """Regression: the communicator's own size check must keep raising
        CommunicationError -- the sanitizer only adds the stricter
        same-shape check *after* it."""
        contributions = {0: np.ones(3), 1: np.ones(4),
                        2: np.ones(3), 3: np.ones(3)}
        with sanitizer.sanitized():
            with pytest.raises(CommunicationError, match="mismatched sizes"):
                cluster.comm.allreduce_sum(contributions)


class TestUnchargedOp:
    def ledger(self):
        return CostLedger(model=MachineModel())

    def test_window_with_no_charge_fires(self):
        ledger = self.ledger()
        with sanitizer.sanitized():
            with pytest.raises(SanitizerError) as excinfo:
                with op_window("spmv", ledger):
                    pass  # simulated work that forgot to charge
        assert excinfo.value.detector == "uncharged_op"
        assert excinfo.value.op == "spmv"

    def test_window_with_time_charge_passes(self):
        ledger = self.ledger()
        with sanitizer.sanitized():
            with op_window("spmv", ledger):
                ledger.add_time(Phase.SPMV_COMPUTE, 1e-6)

    def test_window_with_traffic_charge_passes(self):
        ledger = self.ledger()
        with sanitizer.sanitized():
            with op_window("halo", ledger):
                ledger.add_traffic(Phase.HALO_COMM, 2, 64)

    def test_not_required_window_passes(self):
        ledger = self.ledger()
        with sanitizer.sanitized():
            with op_window("spmv", ledger, required=False):
                pass

    def test_inert_without_active_sanitizer(self):
        with op_window("spmv", self.ledger()):
            pass  # no sanitizer, no check

    def test_uncharged_spmv_is_detected_end_to_end(self, monkeypatch):
        """The real SpMV dispatch runs in an op window: a charging call
        that books nothing must be caught."""
        problem = repro.distribute_problem(
            repro.matrices.poisson_2d(12), n_nodes=4)
        monkeypatch.setattr(type(problem.cluster.ledger), "add_time",
                            lambda self, phase, seconds: 0.0)
        monkeypatch.setattr(type(problem.cluster.ledger), "add_traffic",
                            lambda self, phase, n_messages, n_elements: None)
        with sanitizer.sanitized():
            with pytest.raises(SanitizerError) as excinfo:
                repro.solve(problem, max_iterations=3, rtol=0.0)
        assert excinfo.value.detector == "uncharged_op"


class TestContext:
    def test_iteration_and_phase_context_attached(self, cluster):
        problem = repro.distribute_problem(
            repro.matrices.poisson_2d(12), n_nodes=4)
        with sanitizer.sanitized() as san:
            repro.solve(problem, max_iterations=5, rtol=0.0)
            assert san.context["iteration"] == 4
            assert san.context["phase"] is not None
            node = failed_and_replaced(problem.cluster, 1, blob=np.ones(2))
            with pytest.raises(SanitizerError) as excinfo:
                node.memory.get("blob")
        assert excinfo.value.iteration == 4
        assert excinfo.value.phase is not None


class TestSanitizedSolves:
    """The instrumentation must never change simulation semantics."""

    def solve_once(self):
        problem = repro.distribute_problem(
            repro.matrices.poisson_2d(16), n_nodes=4)
        return repro.solve(problem, phi=2, failures=[(5, [1, 2])])

    def test_resilient_solve_bit_identical_under_sanitizer(self):
        plain = self.solve_once()
        with sanitizer.sanitized() as san:
            sanitized_run = self.solve_once()
        assert sanitized_run.converged and plain.converged
        assert sanitized_run.iterations == plain.iterations
        assert np.array_equal(sanitized_run.x, plain.x)
        assert san.stats["node_failures"] == 2
        assert san.stats["blocks_restored"] > 0
        assert san.stats["op_windows"] > 0
        assert san.stats["collectives"] > 0

    def test_block_solve_runs_clean_under_sanitizer(self):
        problem = repro.distribute_problem(
            repro.matrices.poisson_2d(16), n_nodes=4)
        rhs = np.ones((problem.matrix.partition.n, 3))
        with sanitizer.sanitized():
            result = repro.solve(problem, rhs=rhs, phi=2,
                                 failures=[(4, [2])])
        assert result.converged


class TestHookSuper:
    """The opt-in hook_super detector: the cooperative resilience-hook
    chain must fire every iteration on ESR-carrying solvers."""

    def test_not_in_default_detectors(self):
        from repro.sanitizer import OPT_IN_DETECTORS
        assert "hook_super" in OPT_IN_DETECTORS
        assert "hook_super" not in DETECTORS
        assert not sanitizer.enable().enabled("hook_super")

    def test_env_all_does_not_arm_opt_in(self):
        san = sanitizer.enable_from_env({"REPRO_SANITIZE": "1"})
        assert not san.enabled("hook_super")

    def test_env_comma_select_arms(self):
        san = sanitizer.enable_from_env(
            {"REPRO_SANITIZE": "uncharged_op, hook_super"})
        assert san.enabled("hook_super")
        assert san.enabled("uncharged_op")

    def test_unknown_detector_error_mentions_opt_ins(self):
        with pytest.raises(ValueError, match="hook_super"):
            SimSan(["not_a_detector"])

    def _problem(self):
        return repro.distribute_problem(
            repro.matrices.poisson_2d(16), n_nodes=4)

    def test_clean_resilient_solve_passes(self):
        with sanitizer.sanitized(DETECTORS + ("hook_super",)) as san:
            result = repro.solve(self._problem(), phi=2,
                                 failures=[(5, [1])])
        assert result.converged
        assert san.stats["resilience_hooks"] > 0

    def test_plain_solver_without_esr_is_not_subject(self):
        with sanitizer.sanitized(DETECTORS + ("hook_super",)):
            result = repro.solve(self._problem())
        assert result.converged

    def test_broken_super_chain_detected(self):
        from repro.core.resilient_pcg import ResilientPCG
        from repro.precond import make_preconditioner

        class BrokenESR(ResilientPCG):
            def _after_spmv(self, iteration):
                pass  # drops the cooperative super() chain (lint rule R010)

        problem = self._problem()
        precond = make_preconditioner("block_jacobi")
        precond.setup(problem.matrix.to_global(), problem.partition)
        solver = BrokenESR(problem.matrix, problem.rhs, precond, phi=1,
                           context=problem.context)
        with sanitizer.sanitized(DETECTORS + ("hook_super",)):
            with pytest.raises(SanitizerError) as excinfo:
                solver.solve()
        assert excinfo.value.detector == "hook_super"
        assert "super()" in str(excinfo.value)

    def test_broken_chain_unnoticed_without_opt_in(self):
        from repro.core.resilient_pcg import ResilientPCG
        from repro.precond import make_preconditioner

        class BrokenESR(ResilientPCG):
            def _after_spmv(self, iteration):
                pass

        problem = self._problem()
        precond = make_preconditioner("block_jacobi")
        precond.setup(problem.matrix.to_global(), problem.partition)
        solver = BrokenESR(problem.matrix, problem.rhs, precond, phi=1,
                           context=problem.context)
        with sanitizer.sanitized():  # default detectors only
            assert solver.solve().converged
