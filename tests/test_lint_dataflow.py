"""Tests for the taint dataflow engine (`repro.lint.dataflow`).

Contract: nondeterminism sources (wallclock, unseeded RNG, ``id()``,
``os.environ``, set iteration) propagate through assignments, arithmetic,
containers, and call chains into the sinks (ledger charges, communicator
payloads, failure-schedule and solver-result constructors); ``sorted``/
``len`` neutralise set-order taint and nothing else; every reported flow
is anchored at the source origin and carries the full ``a.py:N -> b.py:M``
hop trace; recursion terminates.
"""

import textwrap

from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import TaintAnalyzer, analyze
from repro.lint.engine import Project, SourceFile


def flows_of(tmp_path, modules):
    files = []
    for rel, source in modules.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        files.append(SourceFile.parse(path, rel))
    return analyze(CallGraph(Project(files)))


def one_module(tmp_path, source):
    return flows_of(tmp_path, {"mod.py": source})


class TestIntraproceduralFlows:
    def test_wallclock_into_charge(self, tmp_path):
        flows = one_module(tmp_path, """\
            import time

            def run(ledger):
                t = time.time()
                ledger.add_time(t)
        """)
        (flow,) = flows
        assert flow.kind == "wallclock"
        assert flow.sink_label == "CostLedger charge"
        assert flow.origin_path == "mod.py"
        assert flow.origin_line == 4
        assert flow.render_trace() == "mod.py:4 -> mod.py:5"

    def test_taint_survives_arithmetic_and_fstrings(self, tmp_path):
        flows = one_module(tmp_path, """\
            import time

            def run(comm):
                stamp = 2.0 * time.time() + 1.0
                comm.send(0, 1, f"at {stamp}")
        """)
        (flow,) = flows
        assert flow.kind == "wallclock"
        assert flow.sink_label == "Communicator payload"

    def test_id_into_charge(self, tmp_path):
        flows = one_module(tmp_path, """\
            def run(ledger, obj):
                ledger.add_traffic(id(obj))
        """)
        (flow,) = flows
        assert flow.kind == "id()"

    def test_environ_into_failure_schedule(self, tmp_path):
        flows = one_module(tmp_path, """\
            import os

            def build():
                return FailureEvent(iteration=int(os.environ["IT"]))
        """)
        (flow,) = flows
        assert flow.kind == "os.environ"
        assert flow.sink_label == "failure-schedule construction"

    def test_getenv_into_solver_result(self, tmp_path):
        flows = one_module(tmp_path, """\
            import os

            def build():
                return SolveResult(iterations=int(os.getenv("N", "1")))
        """)
        (flow,) = flows
        assert flow.kind == "os.environ"
        assert flow.sink_label == "solver-result construction"

    def test_unseeded_rng_receiver_taint(self, tmp_path):
        # The draw happens through an unresolvable attribute call on a
        # tainted receiver: the taint must survive ``rng.normal()``.
        flows = one_module(tmp_path, """\
            import numpy as np

            def run(comm):
                rng = np.random.default_rng()
                comm.bcast(0, rng.normal(size=4))
        """)
        (flow,) = flows
        assert flow.kind == "unseeded RNG"
        assert flow.sink_label == "Communicator payload"

    def test_set_iteration_into_charge(self, tmp_path):
        flows = one_module(tmp_path, """\
            def run(ledger):
                for r in {1, 2, 3}:
                    ledger.add_time(r)
        """)
        assert [f.kind for f in flows] == ["set-order"]

    def test_loop_carried_taint_found(self, tmp_path):
        # The charge happens *before* the assignment in program order; the
        # second propagation pass catches the loop-carried dependency.
        flows = one_module(tmp_path, """\
            import time

            def run(ledger):
                t = 0.0
                for _ in range(3):
                    ledger.add_time(t)
                    t = time.time()
        """)
        assert [f.kind for f in flows] == ["wallclock"]


class TestCleanCode:
    def test_seeded_rng_is_clean(self, tmp_path):
        assert one_module(tmp_path, """\
            import numpy as np

            def run(comm):
                rng = np.random.default_rng(7)
                comm.send(0, 1, rng.normal(size=4))
        """) == []

    def test_plain_values_into_sinks_are_clean(self, tmp_path):
        assert one_module(tmp_path, """\
            def run(ledger, comm, n):
                ledger.add_time(1.5 * n)
                comm.allreduce_sum({0: float(n)})
        """) == []

    def test_sleep_is_not_a_wallclock_source(self, tmp_path):
        assert one_module(tmp_path, """\
            import time

            def run(ledger):
                time.sleep(0.1)
                ledger.add_time(1.0)
        """) == []


class TestSanitizers:
    def test_sorted_kills_set_order(self, tmp_path):
        assert one_module(tmp_path, """\
            def run(ledger):
                for r in sorted({1, 2, 3}):
                    ledger.add_time(r)
        """) == []

    def test_len_kills_set_order(self, tmp_path):
        assert one_module(tmp_path, """\
            def run(ledger):
                s = {1, 2, 3}
                for r in s:
                    pass
                ledger.add_time(len({1, 2, 3}))
        """) == []

    def test_sorted_does_not_launder_wallclock(self, tmp_path):
        flows = one_module(tmp_path, """\
            import time

            def run(ledger):
                t = sorted([time.time()])[0]
                ledger.add_time(t)
        """)
        assert [f.kind for f in flows] == ["wallclock"]

    def test_set_into_set_comprehension_is_clean(self, tmp_path):
        assert one_module(tmp_path, """\
            def run(ledger):
                doubled = {2 * x for x in {1, 2}}
                ledger.add_time(len(doubled))
        """) == []


class TestInterproceduralFlows:
    def test_flow_through_returning_helper(self, tmp_path):
        flows = one_module(tmp_path, """\
            import time

            def measure():
                return time.perf_counter()

            def run(ledger):
                ledger.add_time(measure())
        """)
        (flow,) = flows
        assert flow.kind == "wallclock"
        assert flow.origin_path == "mod.py"
        assert flow.origin_line == 4
        # source -> call site in run -> sink in run
        assert flow.render_trace() == "mod.py:4 -> mod.py:7 -> mod.py:7"

    def test_flow_through_sinking_helper(self, tmp_path):
        flows = one_module(tmp_path, """\
            import time

            def charge(ledger, amount):
                ledger.add_time(amount)

            def run(ledger):
                charge(ledger, time.time())
        """)
        (flow,) = flows
        assert flow.kind == "wallclock"
        # Anchored at the caller's source, traced through the helper sink.
        assert flow.origin_line == 7
        assert flow.render_trace() == "mod.py:7 -> mod.py:7 -> mod.py:4"

    def test_flow_across_modules(self, tmp_path):
        flows = flows_of(tmp_path, {
            "timing.py": """\
                import time

                def stamp():
                    return time.time()
            """,
            "solver.py": """\
                from timing import stamp

                def run(ledger):
                    ledger.add_time(stamp())
            """,
        })
        (flow,) = flows
        assert flow.origin_path == "timing.py"
        assert flow.render_trace() == \
            "timing.py:4 -> solver.py:4 -> solver.py:4"

    def test_param_taint_forwarded_through_chain(self, tmp_path):
        # Three-hop chain: source in run, forwarded through relay into the
        # helper that sinks it.
        flows = one_module(tmp_path, """\
            import time

            def charge(ledger, amount):
                ledger.add_time(amount)

            def relay(ledger, amount):
                charge(ledger, amount)

            def run(ledger):
                relay(ledger, time.time())
        """)
        (flow,) = flows
        assert flow.kind == "wallclock"
        assert flow.origin_line == 10
        assert "charge" not in flow.render_trace()  # trace is path:line hops
        assert flow.render_trace().count(" -> ") >= 3

    def test_untainted_arguments_stay_clean(self, tmp_path):
        assert one_module(tmp_path, """\
            def charge(ledger, amount):
                ledger.add_time(amount)

            def run(ledger):
                charge(ledger, 1.0)
        """) == []

    def test_recursion_terminates(self, tmp_path):
        flows = one_module(tmp_path, """\
            import time

            def rec(ledger, n):
                if n:
                    rec(ledger, n - 1)
                ledger.add_time(time.time())
        """)
        assert [f.kind for f in flows] == ["wallclock"]


class TestAnalyzerApi:
    def test_flows_sorted_and_deduplicated(self, tmp_path):
        files = []
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent("""\
            import time

            def late(ledger):
                ledger.add_time(time.time())

            def early(ledger):
                ledger.add_time(time.time())
        """), encoding="utf-8")
        files.append(SourceFile.parse(path, "mod.py"))
        analyzer = TaintAnalyzer(CallGraph(Project(files)))
        flows = analyzer.flows()
        assert [f.origin_line for f in flows] == [4, 7]
        assert analyzer.flows() == flows  # cached summaries, stable output

    def test_summary_cached_per_function(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f():\n    return 1\n", encoding="utf-8")
        graph = CallGraph(Project([SourceFile.parse(path, "mod.py")]))
        analyzer = TaintAnalyzer(graph)
        func = graph.functions["mod.py::f"]
        assert analyzer.summary(func) is analyzer.summary(func)
