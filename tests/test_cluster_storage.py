"""Tests for the reliable storage of static data."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster import MachineModel, Phase, VirtualCluster
from repro.cluster.cost_model import CostLedger
from repro.cluster.reliable_storage import ReliableStorage


@pytest.fixture
def storage():
    model = MachineModel(jitter_rel_std=0.0)
    return ReliableStorage(CostLedger(model=model)), model


class TestReliableStorage:
    def test_put_and_retrieve(self, storage):
        store, _ = storage
        store.put("b", np.arange(10.0))
        out = store.retrieve("b")
        assert np.array_equal(out, np.arange(10.0))

    def test_missing_key_raises(self, storage):
        store, _ = storage
        with pytest.raises(KeyError):
            store.retrieve("missing")

    def test_block_convention(self, storage):
        store, _ = storage
        store.put_block("A_rows", 3, np.ones(5))
        assert ("A_rows", 3) in store
        out = store.retrieve_block("A_rows", 3)
        assert out.shape == (5,)

    def test_retrieval_charged_to_recovery(self, storage):
        store, _ = storage
        store.put("x", np.ones(1000))
        store.retrieve("x")
        ledger = store._ledger
        assert ledger.total_time([Phase.STORAGE_RETRIEVE]) > 0
        assert ledger.total_elements([Phase.STORAGE_RETRIEVE]) == 1000

    def test_uncharged_retrieval(self, storage):
        store, _ = storage
        store.put("x", np.ones(10))
        store.retrieve("x", charge=False)
        assert store._ledger.total_time() == 0.0

    def test_sparse_matrix_element_count(self, storage):
        store, _ = storage
        block = sp.random(50, 50, density=0.1, format="csr", random_state=0)
        store.put("block", block)
        store.retrieve("block")
        assert store._ledger.total_elements([Phase.STORAGE_RETRIEVE]) == block.nnz

    def test_survives_node_failures(self):
        cluster = VirtualCluster(4)
        cluster.storage.put("data", np.arange(4.0))
        cluster.fail_nodes([0, 1, 2, 3])
        assert np.array_equal(cluster.storage.retrieve("data"), np.arange(4.0))

    def test_retrieval_counter(self, storage):
        store, _ = storage
        store.put("a", 1.0)
        store.retrieve("a")
        store.retrieve("a")
        assert store.retrieval_count == 2

    def test_stored_element_count(self, storage):
        store, _ = storage
        store.put("a", np.ones(7))
        store.put("b", 3.0)
        assert store.stored_element_count() == 8

    def test_keys_and_items(self, storage):
        store, _ = storage
        store.put("a", 1)
        store.put("b", 2)
        assert set(store.keys()) == {"a", "b"}
        assert dict(store.items()) == {"a": 1, "b": 2}

    def test_no_ledger_is_fine(self):
        store = ReliableStorage()
        store.put("a", np.ones(3))
        assert store.retrieve("a").size == 3
