"""Tests for split-phase (overlapped) SpMV and batched multi-RHS kernels.

Contracts exercised here:

* ``overlap=False`` (the default) is untouched by this feature: results and
  charges stay bit-identical to the dense-gather reference.
* ``overlap=True`` executes through the diag/offdiag split: results equal an
  independent split oracle exactly and the fused kernel to rounding; the
  overlap-aware charge obeys ``max(halo, diag) + offdiag <= halo + diag +
  offdiag`` per configuration and the ledger decomposition sums to it.
* Batched ``Y = A X`` is column-wise bit-identical to ``k`` single-vector
  calls on the same execution path, with one halo exchange shipping ``k``
  columns (same message count, ``k``-fold element volume).
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import MachineModel, NodeFailedError, Phase, VirtualCluster
from repro.core.pcg import DistributedPCG
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedMultiVector,
    DistributedVector,
    distributed_spmv,
    distributed_spmv_block,
    ghost_values_for,
)
from repro.matrices import build_matrix, poisson_2d
from repro.precond import make_preconditioner


def make_problem(matrix, n_parts, seed=7):
    n = matrix.shape[0]
    partition = BlockRowPartition(n, n_parts)
    cluster = VirtualCluster(n_parts, machine=MachineModel(jitter_rel_std=0.0))
    dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
    ctx = CommunicationContext.from_matrix(dist)
    values = np.random.default_rng(seed).standard_normal(n)
    return cluster, partition, dist, ctx, values


def split_oracle(matrix, partition, values):
    """Independent diag-then-offdiag product, emulating the exact
    accumulation order of the split kernels: per row, diagonal terms are
    summed in stored order, then off-diagonal terms continue the same
    running sum (the CSR kernel accumulates in place)."""
    matrix = sp.csr_matrix(matrix)
    matrix.sort_indices()
    out = np.empty(partition.n)
    for rank in range(partition.n_parts):
        start, stop = partition.range_of(rank)
        block = matrix[start:stop, :].tocsr()
        block.sort_indices()
        indptr, indices, data = block.indptr, block.indices, block.data
        for i in range(stop - start):
            cols = indices[indptr[i]:indptr[i + 1]]
            vals = data[indptr[i]:indptr[i + 1]]
            own = (cols >= start) & (cols < stop)
            acc = np.float64(0.0)
            for a, j in zip(vals[own], cols[own]):
                acc += a * values[j]
            for a, j in zip(vals[~own], cols[~own]):
                acc += a * values[j]
            out[start + i] = acc
    return out


class TestSplitPhaseEquivalence:
    @pytest.mark.parametrize("matrix_id,n,n_parts", [
        ("M1", 1500, 4), ("M3", 2000, 8), ("M4", 1500, 6), ("M8", 1500, 5),
    ])
    def test_split_results_match_oracle_and_fused(self, matrix_id, n, n_parts):
        matrix = build_matrix(matrix_id, n=n, seed=0)
        cluster, partition, dist, ctx, values = make_problem(matrix, n_parts)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        y_split = DistributedVector.zeros(cluster, partition, "ys")
        y_fused = DistributedVector.zeros(cluster, partition, "yf")
        distributed_spmv(dist, x, y_split, ctx, charge=False, overlap=True)
        distributed_spmv(dist, x, y_fused, ctx, charge=False, overlap=False)
        # Exactly the split summation order (diag terms, then offdiag terms).
        assert np.array_equal(y_split.to_global(),
                              split_oracle(matrix, partition, values))
        # And within rounding of the fused kernel.
        scale = np.max(np.abs(y_fused.to_global()))
        assert np.max(np.abs(y_split.to_global() - y_fused.to_global())) \
            <= 1e-13 * max(scale, 1.0)

    def test_overlap_false_charges_bit_identical_to_reference(self):
        matrix = build_matrix("M3", n=2000, seed=0)
        ledgers = []
        results = []
        for use_engine in (True, False):
            cluster, partition, dist, ctx, values = make_problem(matrix, 8)
            x = DistributedVector.from_global(cluster, partition, "x", values)
            y = DistributedVector.zeros(cluster, partition, "y")
            for _ in range(3):
                distributed_spmv(dist, x, y, ctx, engine=use_engine,
                                 overlap=False)
            ledgers.append(cluster.ledger)
            results.append(y.to_global())
        assert np.array_equal(results[0], results[1])
        assert ledgers[0].times == ledgers[1].times
        assert ledgers[0].messages == ledgers[1].messages
        assert ledgers[0].elements == ledgers[1].elements

    @pytest.mark.parametrize("matrix_id,n_parts", [
        ("M1", 4), ("M3", 8), ("M3", 16), ("M8", 8),
    ])
    def test_overlap_charge_bounded_by_serialized(self, matrix_id, n_parts):
        matrix = build_matrix(matrix_id, n=2000, seed=0)
        cluster, partition, dist, ctx, _ = make_problem(matrix, n_parts)
        engine = dist.spmv_engine(ctx)
        ch = engine.overlap_charge()
        serialized = engine.halo_cost[0] + engine.compute_cost
        assert ch.total_time <= serialized + 1e-18
        # A connected matrix gives every rank halo traffic and diagonal
        # work, so some halo is genuinely hidden.
        assert ch.total_time < serialized
        assert 0.0 <= ch.hidden_halo_fraction <= 1.0
        assert ch.exposed_comm_time >= 0.0
        assert ch.compute_time > 0.0

    def test_overlap_ledger_decomposition(self):
        matrix = build_matrix("M3", n=2000, seed=0)
        cluster, partition, dist, ctx, values = make_problem(matrix, 8)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, ctx, overlap=True)
        engine = dist.spmv_engine(ctx)
        ch = engine.overlap_charge()
        ledger = cluster.ledger
        assert ledger.times[Phase.SPMV_COMPUTE] == ch.compute_time
        assert ledger.times[Phase.HALO_COMM] == pytest.approx(
            ch.exposed_comm_time, abs=1e-24
        )
        assert ledger.iteration_time() == pytest.approx(ch.total_time)
        # Traffic counters are unchanged by the overlap.
        assert ledger.messages[Phase.HALO_COMM] == ctx.total_messages()
        assert ledger.elements[Phase.HALO_COMM] == \
            ctx.total_exchanged_elements()

    def test_overlap_with_mismatched_context_falls_back(self):
        matrix = poisson_2d(12)
        cluster, partition, dist, ctx, values = make_problem(matrix, 4)
        empty_ctx = CommunicationContext(partition, {})
        x = DistributedVector.from_global(cluster, partition, "x", values)
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, empty_ctx, charge=False, overlap=True)
        assert np.array_equal(y.to_global(), matrix @ values)

    def test_overlap_may_alias_input(self):
        matrix = poisson_2d(10)
        cluster, partition, dist, ctx, values = make_problem(matrix, 4)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        distributed_spmv(dist, x, x, ctx, charge=False, overlap=True)
        assert np.array_equal(x.to_global(),
                              split_oracle(matrix, partition, values))

    def test_overlap_fails_when_owner_failed(self):
        matrix = poisson_2d(10)
        cluster, partition, dist, ctx, values = make_problem(matrix, 4)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, ctx, overlap=True)
        cluster.fail_nodes([2])
        with pytest.raises(NodeFailedError):
            distributed_spmv(dist, x, y, ctx, overlap=True)

    def test_diag_offdiag_partition_structure(self):
        matrix = build_matrix("M4", n=1200, seed=0)
        cluster, partition, dist, ctx, _ = make_problem(matrix, 6)
        engine = dist.spmv_engine(ctx)
        for rank in range(6):
            diag = engine.diag_block(rank)
            offdiag = engine.offdiag_block(rank)
            assert engine.diag_nnz(rank) + engine.offdiag_nnz(rank) == \
                dist.nnz_of(rank)
            assert diag.nnz == engine.diag_nnz(rank)
            assert offdiag.nnz == engine.offdiag_nnz(rank)
            # The diagonal part is exactly the square diagonal block A_{I,I}.
            reference = dist.diagonal_block(rank)
            assert (diag != reference).nnz == 0
            n_local = partition.size_of(rank)
            assert diag.shape == (n_local, n_local)
            assert offdiag.shape == (n_local,
                                     engine.ghost_indices(rank).size)


class TestSolverOverlap:
    def test_overlapped_solve_converges_and_is_faster(self):
        matrix = build_matrix("M3", n=2000, seed=0)
        results = {}
        for overlap in (False, True):
            n = matrix.shape[0]
            partition = BlockRowPartition(n, 8)
            cluster = VirtualCluster(8, machine=MachineModel(jitter_rel_std=0.0))
            dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
            rhs = DistributedVector.from_global(
                cluster, partition, "b", np.ones(n)
            )
            precond = make_preconditioner("block_jacobi")
            precond.setup(dist.to_global(), partition)
            solver = DistributedPCG(dist, rhs, precond, overlap_spmv=overlap)
            results[overlap] = solver.solve()
        assert results[True].converged and results[False].converged
        assert results[True].info["overlap_spmv"] is True
        # Same problem, same iteration count (split rounding is last-bits).
        assert results[True].iterations == results[False].iterations
        assert np.allclose(results[True].x, results[False].x,
                           rtol=1e-10, atol=1e-12)
        # The overlap hides part of every iteration's halo time.
        assert results[True].simulated_iteration_time < \
            results[False].simulated_iteration_time


class TestMultiRHS:
    @pytest.mark.parametrize("matrix_id,n,n_parts,k", [
        ("M1", 1500, 4, 3), ("M3", 2000, 8, 8), ("M8", 1500, 5, 2),
    ])
    def test_batched_columns_bit_identical_to_single_calls(
            self, matrix_id, n, n_parts, k):
        matrix = build_matrix(matrix_id, n=n, seed=0)
        cluster, partition, dist, ctx, _ = make_problem(matrix, n_parts)
        block = np.random.default_rng(3).standard_normal(
            (matrix.shape[0], k)
        )
        x = DistributedMultiVector.from_global(cluster, partition, "X", block)
        y = DistributedMultiVector.zeros(cluster, partition, "Y", k)
        distributed_spmv_block(dist, x, y, ctx, charge=False)
        y_global = y.to_global()
        for j in range(k):
            xj = DistributedVector.from_global(
                cluster, partition, f"x{j}", block[:, j]
            )
            yj = DistributedVector.zeros(cluster, partition, f"y{j}")
            distributed_spmv(dist, xj, yj, ctx, charge=False)
            assert np.array_equal(y_global[:, j], yj.to_global())

    def test_engine_and_reference_block_paths_agree(self):
        matrix = build_matrix("M3", n=1500, seed=0)
        cluster, partition, dist, ctx, _ = make_problem(matrix, 6)
        block = np.random.default_rng(5).standard_normal(
            (matrix.shape[0], 4)
        )
        outs = []
        for use_engine in (True, False):
            x = DistributedMultiVector.from_global(
                cluster, partition, f"X{use_engine}", block
            )
            y = DistributedMultiVector.zeros(
                cluster, partition, f"Y{use_engine}", 4
            )
            distributed_spmv_block(dist, x, y, ctx, charge=False,
                                   engine=use_engine)
            outs.append(y.to_global())
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], matrix @ block)

    def test_block_halo_amortizes_messages(self):
        """One batched exchange: same message count, k-fold elements, and
        the per-message latency paid once instead of k times."""
        matrix = build_matrix("M3", n=1500, seed=0)
        k = 8
        cluster, partition, dist, ctx, _ = make_problem(matrix, 6)
        block = np.random.default_rng(1).standard_normal(
            (matrix.shape[0], k)
        )
        x = DistributedMultiVector.from_global(cluster, partition, "X", block)
        y = DistributedMultiVector.zeros(cluster, partition, "Y", k)
        distributed_spmv_block(dist, x, y, ctx)
        ledger = cluster.ledger
        assert ledger.messages[Phase.HALO_COMM] == ctx.total_messages()
        assert ledger.elements[Phase.HALO_COMM] == \
            k * ctx.total_exchanged_elements()
        engine = dist.spmv_engine(ctx)
        halo_k = engine.halo_cost_for(k)[0]
        assert halo_k < k * engine.halo_cost[0]  # latency paid once
        assert ledger.times[Phase.HALO_COMM] == halo_k
        assert ledger.times[Phase.SPMV_COMPUTE] == engine.compute_cost_for(k)

    def test_block_overlap_matches_split_singles(self):
        matrix = build_matrix("M4", n=1200, seed=0)
        k = 3
        cluster, partition, dist, ctx, _ = make_problem(matrix, 6)
        block = np.random.default_rng(9).standard_normal(
            (matrix.shape[0], k)
        )
        x = DistributedMultiVector.from_global(cluster, partition, "X", block)
        y = DistributedMultiVector.zeros(cluster, partition, "Y", k)
        distributed_spmv_block(dist, x, y, ctx, charge=False, overlap=True)
        y_global = y.to_global()
        for j in range(k):
            xj = DistributedVector.from_global(
                cluster, partition, f"x{j}", block[:, j]
            )
            yj = DistributedVector.zeros(cluster, partition, f"y{j}")
            distributed_spmv(dist, xj, yj, ctx, charge=False, overlap=True)
            assert np.array_equal(y_global[:, j], yj.to_global())

    def test_block_output_may_alias_input(self):
        matrix = poisson_2d(10)
        cluster, partition, dist, ctx, _ = make_problem(matrix, 4)
        block = np.random.default_rng(2).standard_normal((100, 3))
        x = DistributedMultiVector.from_global(cluster, partition, "X", block)
        distributed_spmv_block(dist, x, x, ctx, charge=False)
        assert np.array_equal(x.to_global(), matrix @ block)

    def test_block_fails_when_owner_failed(self):
        matrix = poisson_2d(10)
        cluster, partition, dist, ctx, _ = make_problem(matrix, 4)
        block = np.ones((100, 2))
        x = DistributedMultiVector.from_global(cluster, partition, "X", block)
        y = DistributedMultiVector.zeros(cluster, partition, "Y", 2)
        distributed_spmv_block(dist, x, y, ctx)
        cluster.fail_nodes([1])
        with pytest.raises(NodeFailedError):
            distributed_spmv_block(dist, x, y, ctx)

    def test_multivector_validation(self):
        matrix = poisson_2d(10)
        cluster, partition, dist, ctx, _ = make_problem(matrix, 4)
        with pytest.raises(ValueError):
            DistributedMultiVector(cluster, partition, "bad", 0)
        with pytest.raises(ValueError):
            DistributedMultiVector.from_global(
                cluster, partition, "bad", np.ones(100)  # 1-D
            )
        x = DistributedMultiVector.zeros(cluster, partition, "X", 2)
        with pytest.raises(ValueError):
            x.set_block(0, np.ones((partition.size_of(0), 3)))
        y = DistributedMultiVector.zeros(cluster, partition, "Y", 3)
        with pytest.raises(ValueError):
            distributed_spmv_block(dist, x, y, ctx)
        with pytest.raises(IndexError):
            x.column(5)
        assert np.array_equal(x.column(1), np.zeros(100))
        assert x.available_ranks() == [0, 1, 2, 3]


class TestGhostValuesEnginePath:
    def test_matches_per_edge_reference(self):
        matrix = build_matrix("M3", n=1200, seed=0)
        cluster, partition, dist, ctx, values = make_problem(matrix, 6)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        dist.spmv_engine(ctx)  # warm the cache
        for dst in range(6):
            legacy = ghost_values_for(ctx, x, dst)
            fast = ghost_values_for(ctx, x, dst, matrix=dist)
            assert sorted(legacy) == sorted(fast)
            for src in legacy:
                assert np.array_equal(legacy[src], fast[src])

    def test_without_cached_engine_uses_reference(self):
        matrix = poisson_2d(10)
        cluster, partition, dist, ctx, values = make_problem(matrix, 4)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        # No engine built for this context yet: must still be correct.
        out = ghost_values_for(ctx, x, 1, matrix=dist)
        for src, vals in out.items():
            idx = ctx.send_indices(src, 1)
            assert np.array_equal(vals, values[idx])


class TestPreconditionerWorkCache:
    def test_max_block_work_matches_per_rank_max(self):
        matrix = poisson_2d(12)
        partition = BlockRowPartition(144, 4)
        precond = make_preconditioner("block_jacobi")
        precond.setup(matrix, partition)
        expected = max(precond.block_work_nnz(r) for r in range(4))
        assert precond.max_block_work_nnz() == expected
        # Cached: repeated calls return the same object value.
        assert precond.max_block_work_nnz() == expected

    def test_cache_reset_on_setup(self):
        precond = make_preconditioner("block_jacobi")
        precond.setup(poisson_2d(8), BlockRowPartition(64, 2))
        first = precond.max_block_work_nnz()
        precond.setup(poisson_2d(16), BlockRowPartition(256, 4))
        second = precond.max_block_work_nnz()
        assert second != first
        assert second == max(precond.block_work_nnz(r) for r in range(4))

    def test_solver_charge_identical_to_per_rank_loop(self):
        """The cached worst-rank charge must equal the old per-rank max."""
        matrix = poisson_2d(14)
        n = matrix.shape[0]
        partition = BlockRowPartition(n, 4)
        cluster = VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0))
        dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
        rhs = DistributedVector.from_global(cluster, partition, "b", np.ones(n))
        precond = make_preconditioner("block_jacobi")
        precond.setup(matrix, partition)
        solver = DistributedPCG(dist, rhs, precond)
        model = cluster.ledger.model
        before = cluster.ledger.snapshot()
        z = DistributedVector.zeros(cluster, partition, "z")
        solver._apply_preconditioner(rhs, z)
        charged = cluster.ledger.since(before, [Phase.PRECOND_COMPUTE])
        expected = max(
            model.precond_apply_time(precond.block_work_nnz(r))
            for r in range(4)
        )
        assert charged == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(24, 300), n_parts=st.integers(1, 10),
       density=st.floats(0.01, 0.2), seed=st.integers(0, 2**32 - 1))
def test_property_split_phase_equals_oracle(n, n_parts, density, seed):
    """Split-phase execution equals the independent diag/offdiag oracle and
    stays within rounding of the dense-gather reference for random inputs."""
    n_parts = min(n_parts, n)
    rng = np.random.default_rng(seed)
    random_part = sp.random(n, n, density=density, random_state=rng,
                            format="csr")
    matrix = (random_part + random_part.T + sp.eye(n)).tocsr()
    values = rng.standard_normal(n)
    partition = BlockRowPartition(n, n_parts)
    cluster = VirtualCluster(n_parts, machine=MachineModel(jitter_rel_std=0.0))
    dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
    ctx = CommunicationContext.from_matrix(dist)
    x = DistributedVector.from_global(cluster, partition, "x", values)
    y = DistributedVector.zeros(cluster, partition, "y")
    distributed_spmv(dist, x, y, ctx, charge=False, overlap=True)
    assert np.array_equal(y.to_global(),
                          split_oracle(matrix, partition, values))
    reference = matrix @ values
    scale = max(float(np.max(np.abs(reference))), 1.0)
    assert np.max(np.abs(y.to_global() - reference)) <= 1e-12 * scale
