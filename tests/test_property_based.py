"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import MachineModel, VirtualCluster
from repro.core.redundancy import (
    REDUNDANCY_SCHEMES,
    BackupPlacement,
    RedundancyScheme,
    backup_targets,
    build_redundancy_scheme,
)
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedMultiVector,
    DistributedVector,
)
from repro.distributed.dmultivector import fused_dots

COMMON_SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# partition properties
# ---------------------------------------------------------------------------

@COMMON_SETTINGS
@given(n=st.integers(1, 5000), n_parts=st.integers(1, 64))
def test_partition_covers_indices_exactly_once(n, n_parts):
    if n_parts > n:
        n_parts = n
    part = BlockRowPartition(n, n_parts)
    sizes = part.sizes()
    assert int(sizes.sum()) == n
    assert int(sizes.max()) - int(sizes.min()) <= 1
    assert int(sizes.max()) == part.max_block_size()
    # contiguity and completeness
    offsets = part.offsets
    assert offsets[0] == 0 and offsets[-1] == n
    assert np.all(np.diff(offsets) == sizes)


@COMMON_SETTINGS
@given(n=st.integers(2, 2000), n_parts=st.integers(1, 32),
       probe=st.integers(0, 10**6))
def test_partition_ownership_consistent(n, n_parts, probe):
    n_parts = min(n_parts, n)
    part = BlockRowPartition(n, n_parts)
    index = probe % n
    owner = part.owner_of_scalar(index)
    start, stop = part.range_of(owner)
    assert start <= index < stop
    assert part.local_index(owner, np.array([index]))[0] == index - start


# ---------------------------------------------------------------------------
# backup target properties (Eqn. 5)
# ---------------------------------------------------------------------------

@COMMON_SETTINGS
@given(n_nodes=st.integers(2, 100), owner=st.integers(0, 99),
       phi=st.integers(0, 20),
       placement=st.sampled_from(list(BackupPlacement)))
def test_backup_targets_distinct_and_not_owner(n_nodes, owner, phi, placement):
    owner = owner % n_nodes
    phi = min(phi, n_nodes - 1)
    targets = backup_targets(owner, phi, n_nodes, placement)
    assert len(targets) == phi
    assert len(set(targets)) == phi
    assert owner not in targets
    assert all(0 <= t < n_nodes for t in targets)


# ---------------------------------------------------------------------------
# communication context + redundancy invariant on random sparsity patterns
# ---------------------------------------------------------------------------

def random_spd(n, density, seed):
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, random_state=rng, format="csr")
    a = a + a.T
    rowsum = np.asarray(abs(a).sum(axis=1)).ravel()
    return sp.csr_matrix(a + sp.diags(rowsum + 1.0))


@COMMON_SETTINGS
@given(n=st.integers(24, 160), n_nodes=st.integers(2, 8),
       density=st.floats(0.005, 0.15), phi=st.integers(0, 4),
       seed=st.integers(0, 10**6))
def test_redundancy_invariant_random_patterns(n, n_nodes, density, phi, seed):
    """Every element gets >= phi off-node copies for arbitrary sparsity."""
    n_nodes = min(n_nodes, n)
    phi = min(phi, n_nodes - 1)
    matrix = random_spd(n, density, seed)
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(n, n_nodes)
    dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
    context = CommunicationContext.from_matrix(dist)
    scheme = RedundancyScheme(context, phi)
    assert scheme.verify_invariant()
    # the overhead always respects the analytic bounds of Sec. 4.2
    lower, upper = scheme.overhead_bounds(cluster.topology, cluster.machine)
    total = scheme.per_iteration_overhead_time(cluster.topology, cluster.machine)
    assert lower - 1e-15 <= total <= upper + 1e-15


@COMMON_SETTINGS
@given(n=st.integers(24, 160), n_nodes=st.integers(2, 8),
       density=st.floats(0.005, 0.15), phi=st.integers(0, 3),
       n_cols=st.sampled_from([1, 4]),
       placement=st.sampled_from([BackupPlacement.PAPER,
                                  BackupPlacement.NEXT_RANKS,
                                  BackupPlacement.RANDOM]),
       scheme_name=st.sampled_from(sorted(REDUNDANCY_SCHEMES.names())),
       seed=st.integers(0, 10**6))
def test_every_registered_scheme_respects_sandwich_bounds(
        n, n_nodes, density, phi, n_cols, placement, scheme_name, seed):
    """Sec. 4.2 sandwich for EVERY registered scheme x placement x width.

    ``lower <= per_iteration_overhead_time <= upper`` must hold for all
    registered redundancy schemes across placements, ``phi``, column counts,
    and non-uniform partitions (``n`` not divisible by ``n_nodes``) -- the
    charge-model obligation every scheme registration signs up for.
    """
    n_nodes = min(n_nodes, n)
    phi = min(phi, n_nodes - 1)
    matrix = random_spd(n, density, seed)
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(n, n_nodes)
    dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
    context = CommunicationContext.from_matrix(dist)
    scheme = build_redundancy_scheme(scheme_name, context, phi,
                                     placement=placement,
                                     rng=np.random.default_rng(seed))
    assert scheme.verify_invariant()
    lower, upper = scheme.overhead_bounds(cluster.topology, cluster.machine,
                                          n_cols=n_cols)
    total = scheme.per_iteration_overhead_time(cluster.topology,
                                               cluster.machine, n_cols=n_cols)
    assert lower - 1e-15 <= total <= upper + 1e-15
    messages, elements = scheme.extra_traffic_per_iteration(n_cols=n_cols)
    assert messages >= 0 and elements >= 0
    assert scheme.redundant_elements_per_generation(n_cols=n_cols) >= 0


@COMMON_SETTINGS
@given(n=st.integers(24, 120), n_nodes=st.integers(2, 6),
       density=st.floats(0.01, 0.2), seed=st.integers(0, 10**6))
def test_context_send_sets_partition_consistent(n, n_nodes, density, seed):
    """S_ik contains only indices owned by i and needed by k."""
    n_nodes = min(n_nodes, n)
    matrix = random_spd(n, density, seed)
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(n, n_nodes)
    dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
    context = CommunicationContext.from_matrix(dist)
    for edge in context.edges():
        assert np.all(partition.owner_of(edge.indices) == edge.src)
        needed = dist.needed_column_indices(edge.dst)
        assert np.isin(edge.indices, needed).all()
    # multiplicities are consistent with the total exchanged volume
    total = sum(int(context.multiplicity(o).sum()) for o in range(n_nodes))
    assert total == context.total_exchanged_elements()


# ---------------------------------------------------------------------------
# distributed vector round-trips and reductions
# ---------------------------------------------------------------------------

@COMMON_SETTINGS
@given(n=st.integers(4, 400), n_nodes=st.integers(1, 12),
       seed=st.integers(0, 10**6))
def test_dvector_roundtrip_and_dot(n, n_nodes, seed):
    n_nodes = min(n_nodes, n)
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(n)
    other = rng.standard_normal(n)
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(n, n_nodes)
    a = DistributedVector.from_global(cluster, partition, "a", values)
    b = DistributedVector.from_global(cluster, partition, "b", other)
    assert np.allclose(a.to_global(), values)
    assert a.dot(b) == pytest.approx(float(values @ other), rel=1e-10, abs=1e-12)
    assert a.norm2() == pytest.approx(float(np.linalg.norm(values)), rel=1e-10)
    alpha = float(rng.standard_normal())
    a.axpy(alpha, b)
    assert np.allclose(a.to_global(), values + alpha * other)


# ---------------------------------------------------------------------------
# block BLAS-1 / batched-reduction properties (multi-vectors)
# ---------------------------------------------------------------------------

def _mv_setup(n, n_nodes, k, seed):
    """Fresh cluster + matching (n, k) multi-vectors and per-column vectors."""
    rng = np.random.default_rng(seed)
    xg = rng.standard_normal((n, k))
    yg = rng.standard_normal((n, k))
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(n, n_nodes)
    bx = DistributedMultiVector.from_global(cluster, partition, "X", xg)
    by = DistributedMultiVector.from_global(cluster, partition, "Y", yg)
    vcluster = VirtualCluster(n_nodes,
                              machine=MachineModel(jitter_rel_std=0.0))
    vx = [DistributedVector.from_global(vcluster, partition, f"x{j}", xg[:, j])
          for j in range(k)]
    vy = [DistributedVector.from_global(vcluster, partition, f"y{j}", yg[:, j])
          for j in range(k)]
    return rng, xg, yg, bx, by, vx, vy


@COMMON_SETTINGS
@given(n=st.integers(8, 300), n_nodes=st.integers(1, 8),
       k=st.integers(1, 8), seed=st.integers(0, 10**6),
       per_column=st.booleans())
def test_block_blas1_per_column_bit_equal_to_vector_ops(
        n, n_nodes, k, seed, per_column):
    """copy/fill/scale/axpy/aypx/assign on (n, k) blocks are per-column
    bit-identical to the DistributedVector ops, for scalar and per-column
    coefficients alike."""
    n_nodes = min(n_nodes, n)
    rng, xg, yg, bx, by, vx, vy = _mv_setup(n, n_nodes, k, seed)
    alpha_cols = rng.standard_normal(k)
    alpha = alpha_cols if per_column else float(alpha_cols[0])
    alpha_of = (lambda j: float(alpha_cols[j])) if per_column \
        else (lambda j: float(alpha_cols[0]))
    fill_value = float(rng.standard_normal())

    # scale
    bx.scale(alpha)
    for j in range(k):
        vx[j].scale(alpha_of(j))
        assert np.array_equal(bx.column(j), vx[j].to_global())
    # axpy
    bx.axpy(alpha, by)
    for j in range(k):
        vx[j].axpy(alpha_of(j), vy[j])
        assert np.array_equal(bx.column(j), vx[j].to_global())
    # aypx
    bx.aypx(alpha, by)
    for j in range(k):
        vx[j].aypx(alpha_of(j), vy[j])
        assert np.array_equal(bx.column(j), vx[j].to_global())
    # copy / assign / fill
    bc = bx.copy("Xc")
    for j in range(k):
        assert np.array_equal(bc.column(j), vx[j].to_global())
    bc.fill(fill_value)
    assert np.array_equal(bc.to_global(),
                          np.full((n, k), fill_value))
    bc.assign(by)
    for j in range(k):
        assert np.array_equal(bc.column(j), vy[j].to_global())


@COMMON_SETTINGS
@given(n=st.integers(8, 300), n_nodes=st.integers(1, 8),
       k=st.integers(1, 8), seed=st.integers(0, 10**6))
def test_batched_dots_and_fused_dots_bit_equal_to_vector_dots(
        n, n_nodes, k, seed):
    """dots() ships k per-column dots in one collective, fused_dots() ships
    several pairs in one collective -- every component bit-identical to the
    single-vector DistributedVector.dot on the same columns."""
    n_nodes = min(n_nodes, n)
    _, xg, yg, bx, by, vx, vy = _mv_setup(n, n_nodes, k, seed)
    dots = bx.dots(by)
    assert dots.shape == (k,)
    for j in range(k):
        assert dots[j] == vx[j].dot(vy[j])
    fused_xy, fused_xx = fused_dots([(bx, by), (bx, bx)])
    assert np.array_equal(fused_xy, dots)
    assert np.array_equal(fused_xx, bx.dots(bx))
    norms = bx.norms2()
    for j in range(k):
        assert norms[j] == vx[j].norm2()


@COMMON_SETTINGS
@given(n=st.integers(8, 300), n_nodes=st.integers(1, 8),
       k=st.integers(1, 8), seed=st.integers(0, 10**6))
def test_gram_matches_dense_blocked_product(n, n_nodes, k, seed):
    """gram() equals the rank-blocked dense X^T Y (bit-identical to summing
    the per-rank GEMM contributions in rank order) and its diagonal agrees
    with dots() to rounding."""
    n_nodes = min(n_nodes, n)
    _, xg, yg, bx, by, vx, vy = _mv_setup(n, n_nodes, k, seed)
    gram = bx.gram(by)
    assert gram.shape == (k, k)
    partition = bx.partition
    expected = np.zeros((k, k))
    for rank in range(n_nodes):
        start, stop = partition.range_of(rank)
        expected = expected + xg[start:stop].T @ yg[start:stop]
    assert np.array_equal(gram, expected)
    assert np.allclose(np.diag(gram), bx.dots(by), rtol=1e-12, atol=1e-12)


# ---------------------------------------------------------------------------
# sequential PCG properties
# ---------------------------------------------------------------------------

@COMMON_SETTINGS
@given(n=st.integers(10, 120), nnz_per_row=st.integers(2, 8),
       seed=st.integers(0, 10**6))
def test_pcg_solves_random_spd_systems(n, nnz_per_row, seed):
    from repro.matrices import diagonally_dominant_spd
    from repro.solvers import pcg
    from repro.precond import JacobiPreconditioner

    a = diagonally_dominant_spd(n, nnz_per_row=nnz_per_row, seed=seed)
    rng = np.random.default_rng(seed)
    x_exact = rng.standard_normal(n)
    b = a @ x_exact
    precond = JacobiPreconditioner()
    precond.setup(a)
    result = pcg(a, b, preconditioner=precond, rtol=1e-12,
                 max_iterations=5 * n)
    assert result.converged
    assert np.allclose(result.x, x_exact, rtol=1e-6, atol=1e-8)
    # residual history is consistent with the returned final norm
    assert result.residual_norms[-1] == pytest.approx(result.final_residual_norm)
