"""JSON serialization of the solve-result types (``to_dict`` / ``jsonify``).

Pins the satellite contract: every result the façade can return --
``SolveResult``, ``DistributedSolveResult``, ``BlockSolveResult``, including
their convergence histories and recovery reports -- serializes to plain
JSON without hand-picking attributes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.cluster import MachineModel
from repro.core.reconstruction import RecoveryReport
from repro.core.spec import ResilienceSpec, SolveSpec
from repro.solvers.local_solver import LocalSolveStats
from repro.solvers.result import SolveResult, jsonify


class TestJsonify:
    def test_passthrough_scalars(self):
        assert jsonify(None) is None
        assert jsonify(True) is True
        assert jsonify(3) == 3
        assert jsonify(1.5) == 1.5
        assert jsonify("s") == "s"

    def test_numpy_types(self):
        assert jsonify(np.float64(2.5)) == 2.5
        assert isinstance(jsonify(np.int64(3)), int)
        assert jsonify(np.array([1.0, 2.0])) == [1.0, 2.0]
        assert jsonify(np.ones((2, 2))) == [[1.0, 1.0], [1.0, 1.0]]

    def test_containers_recursed(self):
        out = jsonify({"a": np.float64(1.0), "b": (np.int32(2), [3])})
        assert out == {"a": 1.0, "b": [2, [3]]}

    def test_objects_with_to_dict_delegate(self):
        stats = LocalSolveStats("direct", 4, 10, 1, 1e-16, 100.0)
        assert jsonify(stats) == stats.to_dict()

    def test_fallback_is_repr(self):
        assert jsonify(object).startswith("<class")


class TestSolveResultToDict:
    def make_result(self):
        return SolveResult(
            x=np.array([1.0, 2.0]), converged=True, iterations=3,
            residual_norms=[1.0, 0.1, 0.01], final_residual_norm=0.01,
            true_residual_norm=0.0100001,
            solver_residual=np.array([0.0, 0.01]),
            info={"preconditioner": "block_jacobi", "k": np.int64(1)})

    def test_default_excludes_solution_includes_history(self):
        data = self.make_result().to_dict()
        assert "x" not in data and "solver_residual" not in data
        assert data["residual_norms"] == [1.0, 0.1, 0.01]
        assert data["converged"] is True
        assert data["iterations"] == 3
        assert data["relative_residual_deviation"] == pytest.approx(
            self.make_result().relative_residual_deviation)
        json.dumps(data)

    def test_solution_and_history_toggles(self):
        data = self.make_result().to_dict(include_solution=True,
                                          include_history=False)
        assert data["x"] == [1.0, 2.0]
        assert data["solver_residual"] == [0.0, 0.01]
        assert "residual_norms" not in data
        json.dumps(data)


class TestDistributedResultsToDict:
    def test_distributed_solve_result(self, poisson_problem_factory):
        result = repro.solve(poisson_problem_factory())
        data = result.to_dict()
        payload = json.loads(json.dumps(data))
        assert payload["converged"] is True
        assert payload["simulated_time"] == result.simulated_time
        assert payload["time_breakdown"] == \
            {k: result.time_breakdown[k]
             for k in sorted(result.time_breakdown)}
        assert payload["recoveries"] == []
        assert payload["n_failures_recovered"] == 0

    def test_resilient_result_serializes_recoveries(
            self, poisson_problem_factory):
        result = repro.solve(
            poisson_problem_factory(),
            spec=SolveSpec(resilience=ResilienceSpec(
                phi=2, failures=((5, (1, 2)),))))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["n_failures_recovered"] == 2
        (episode,) = payload["recoveries"]
        assert episode["iteration"] == 5
        assert episode["failed_ranks"] == [1, 2]
        assert episode["local_solve_stats"]
        assert all(isinstance(s["work_flops"], float)
                   for s in episode["local_solve_stats"])

    def test_block_solve_result(self, small_poisson):
        problem = repro.distribute_problem(
            small_poisson, n_nodes=4, seed=0,
            machine=MachineModel(jitter_rel_std=0.0))
        rng = np.random.default_rng(0)
        rhs = rng.standard_normal((small_poisson.shape[0], 3))
        result = repro.solve(problem, rhs)
        payload = json.loads(json.dumps(
            result.to_dict(include_solution=True)))
        assert payload["converged"] == [True, True, True]
        assert payload["all_converged"] is True
        assert payload["iterations"] == list(result.iterations)
        assert len(payload["residual_histories"]) == 3
        assert payload["residual_histories"][1] == \
            [float(v) for v in result.residual_histories[1]]
        assert np.array_equal(np.asarray(payload["x"]), result.x)
        compact = result.to_dict(include_history=False)
        assert "residual_histories" not in compact and "x" not in compact

    def test_recovery_report_direct(self):
        report = RecoveryReport(
            iteration=7, failed_ranks=[2], restarts=1, simulated_time=0.5,
            wallclock_time=0.01, reconstruction_form="inverse",
            local_solve_stats=[LocalSolveStats("pcg_ilu", 8, 20, 3, 1e-15,
                                               240.0)],
            notes=["overlapping failure"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["n_failures"] == 1
        assert payload["restarts"] == 1
        assert payload["notes"] == ["overlapping failure"]
        assert payload["local_solve_stats"][0]["method"] == "pcg_ilu"
