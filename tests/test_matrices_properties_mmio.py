"""Tests for matrix structural analysis and Matrix Market I/O."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import generators as gen
from repro.matrices.mmio import (
    MatrixMarketError,
    read_matrix_market,
    read_vector,
    write_matrix_market,
)
from repro.matrices.properties import (
    analyze,
    band_fraction,
    blocks_coupled_per_row,
    diagonally_dominant_fraction,
    estimate_condition_number,
    half_bandwidth,
    is_symmetric,
    nnz_per_row,
)


class TestProperties:
    def test_nnz_per_row(self):
        a = gen.poisson_1d(5)
        assert list(nnz_per_row(a)) == [2, 3, 3, 3, 2]

    def test_half_bandwidth_tridiagonal(self):
        assert half_bandwidth(gen.poisson_1d(10)) == 1

    def test_half_bandwidth_2d(self):
        assert half_bandwidth(gen.poisson_2d(8)) == 8

    def test_band_fraction(self):
        a = gen.poisson_2d(8)
        assert band_fraction(a, 8) == pytest.approx(1.0)
        assert band_fraction(a, 0) < 1.0

    def test_is_symmetric(self):
        assert is_symmetric(gen.poisson_2d(6))
        assert not is_symmetric(sp.csr_matrix(np.triu(np.ones((4, 4)))))

    def test_diagonally_dominant_fraction(self):
        a = gen.diagonally_dominant_spd(100, seed=0)
        assert diagonally_dominant_fraction(a) == pytest.approx(1.0)

    def test_blocks_coupled_per_row(self):
        a = gen.poisson_1d(16)
        coupled = blocks_coupled_per_row(a, 4)
        # only rows at block boundaries couple to another block
        assert coupled.max() == 1
        assert coupled.sum() == 6  # 3 boundaries x 2 rows

    def test_analyze_summary(self):
        a = gen.poisson_2d(10)
        props = analyze(a)
        assert props.n == 100
        assert props.nnz == a.nnz
        assert props.symmetric
        assert props.half_bandwidth == 10
        assert 0 < props.nnz_per_row_mean <= 5
        assert props.as_dict()["n"] == 100

    def test_condition_number_estimate(self):
        a = gen.poisson_1d(50)
        kappa = estimate_condition_number(a)
        # exact condition number of the 1-D Laplacian is ~ (2/pi*(n+1))^2
        assert 100 < kappa < 10_000


class TestMatrixMarket:
    def test_roundtrip_symmetric(self, tmp_path):
        a = gen.poisson_2d(6)
        path = tmp_path / "matrix.mtx"
        write_matrix_market(path, a, symmetric=True, comment="test matrix")
        b = read_matrix_market(path)
        assert (a != b).nnz == 0

    def test_roundtrip_general(self, tmp_path):
        rng = np.random.default_rng(0)
        a = sp.random(20, 20, density=0.2, random_state=0, format="csr")
        path = tmp_path / "general.mtx"
        write_matrix_market(path, a, symmetric=False)
        b = read_matrix_market(path)
        assert np.allclose((a - b).toarray(), 0.0)

    def test_gzip_roundtrip(self, tmp_path):
        a = gen.poisson_1d(10)
        path = tmp_path / "matrix.mtx.gz"
        write_matrix_market(path, a)
        b = read_matrix_market(path)
        assert (a != b).nnz == 0

    def test_pattern_matrix(self, tmp_path):
        path = tmp_path / "pattern.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 3\n1 1\n2 2\n3 1\n"
        )
        a = read_matrix_market(path)
        assert a.nnz == 3
        assert a[2, 0] == 1.0

    def test_rejects_non_mm_file(self, tmp_path):
        path = tmp_path / "junk.mtx"
        path.write_text("not a matrix market file\n")
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)

    def test_rejects_unsupported_format(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 5.0\n"
        )
        with pytest.raises(MatrixMarketError):
            read_matrix_market(path)

    def test_symmetric_output_requires_square(self, tmp_path):
        rect = sp.csr_matrix(np.ones((2, 3)))
        with pytest.raises(MatrixMarketError):
            write_matrix_market(tmp_path / "x.mtx", rect, symmetric=True)

    def test_read_plain_vector(self, tmp_path):
        path = tmp_path / "vec.txt"
        path.write_text("1.5\n2.5\n-3.0\n")
        v = read_vector(path)
        assert np.allclose(v, [1.5, 2.5, -3.0])

    def test_read_array_vector(self, tmp_path):
        path = tmp_path / "vec.mtx"
        path.write_text(
            "%%MatrixMarket matrix array real general\n3 1\n1.0\n2.0\n3.0\n"
        )
        v = read_vector(path)
        assert np.allclose(v, [1.0, 2.0, 3.0])
