"""Tests for stationary methods and the reconstruction's local solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import poisson_2d, diagonally_dominant_spd
from repro.solvers import (
    LocalSubsystemSolver,
    gauss_seidel_method,
    jacobi_method,
    sor_method,
    ssor_method,
)


@pytest.fixture
def small_system():
    a = diagonally_dominant_spd(60, nnz_per_row=4, seed=0)
    x_exact = np.random.default_rng(1).standard_normal(60)
    return a, a @ x_exact, x_exact


class TestStationaryMethods:
    def test_jacobi_converges_on_diagonally_dominant(self, small_system):
        a, b, x_exact = small_system
        result = jacobi_method(a, b, rtol=1e-10, max_iterations=5000)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-6)

    def test_gauss_seidel_faster_than_jacobi(self, small_system):
        a, b, _ = small_system
        jac = jacobi_method(a, b, rtol=1e-8, max_iterations=5000)
        gs = gauss_seidel_method(a, b, rtol=1e-8, max_iterations=5000)
        assert gs.converged
        assert gs.iterations < jac.iterations

    def test_sor_converges(self, small_system):
        a, b, x_exact = small_system
        result = sor_method(a, b, omega=1.2, rtol=1e-10, max_iterations=5000)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-6)

    def test_ssor_converges(self, small_system):
        a, b, x_exact = small_system
        result = ssor_method(a, b, omega=1.1, rtol=1e-10, max_iterations=5000)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-6)

    def test_invalid_omega_rejected(self, small_system):
        a, b, _ = small_system
        with pytest.raises(ValueError):
            sor_method(a, b, omega=2.0)
        with pytest.raises(ValueError):
            ssor_method(a, b, omega=0.0)

    def test_zero_diagonal_rejected(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            jacobi_method(a, np.ones(2))

    def test_iteration_cap(self, small_system):
        a, b, _ = small_system
        result = jacobi_method(a, b, rtol=1e-14, max_iterations=3)
        assert result.iterations == 3
        assert not result.converged

    def test_shape_mismatch_rejected(self, small_system):
        a, _, _ = small_system
        with pytest.raises(ValueError):
            jacobi_method(a, np.ones(10))

    def test_initial_guess_respected(self, small_system):
        a, b, x_exact = small_system
        result = gauss_seidel_method(a, b, x0=x_exact, rtol=1e-8)
        assert result.iterations == 0


class TestLocalSubsystemSolver:
    @pytest.fixture
    def subsystem(self):
        a = poisson_2d(10)
        sub = a[20:60, 20:60].tocsr()
        x = np.random.default_rng(2).standard_normal(40)
        return sub, sub @ x, x

    @pytest.mark.parametrize("method", ["direct", "pcg_ilu", "pcg_jacobi"])
    def test_all_methods_accurate(self, subsystem, method):
        a, b, x_exact = subsystem
        solver = LocalSubsystemSolver(method, rtol=1e-14)
        x = solver.solve(a, b)
        assert np.allclose(x, x_exact, atol=1e-8)
        assert solver.last_stats is not None
        assert solver.last_stats.size == 40
        assert solver.work_flops() > 0

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            LocalSubsystemSolver("gaussian_elimination")

    def test_empty_system(self):
        solver = LocalSubsystemSolver("direct")
        x = solver.solve(sp.csr_matrix((0, 0)), np.zeros(0))
        assert x.size == 0

    def test_stats_track_iterations(self, subsystem):
        a, b, _ = subsystem
        solver = LocalSubsystemSolver("pcg_ilu", rtol=1e-14)
        solver.solve(a, b)
        assert solver.last_stats.iterations >= 1
        assert solver.last_stats.method in ("pcg_ilu", "pcg_ilu+direct_fallback")

    def test_direct_fallback_keeps_accuracy(self):
        # A tiny, very ill-conditioned system can trip the iterative path;
        # the solver must still return an accurate answer.
        rng = np.random.default_rng(0)
        d = 10.0 ** rng.uniform(-8, 0, size=30)
        a = sp.diags(d).tocsr()
        x_exact = rng.standard_normal(30)
        b = a @ x_exact
        solver = LocalSubsystemSolver("pcg_ilu", rtol=1e-14)
        x = solver.solve(a, b)
        assert np.allclose(x, x_exact, rtol=1e-6)

    def test_work_flops_zero_before_solve(self):
        assert LocalSubsystemSolver("direct").work_flops() == 0.0


class TestLocalSubsystemSolverBlock:
    @pytest.fixture
    def block_subsystem(self):
        a = poisson_2d(10)
        sub = a[20:60, 20:60].tocsr()
        x = np.random.default_rng(3).standard_normal((40, 4))
        return sub, sub @ x, x

    @pytest.mark.parametrize("method", ["direct", "pcg_ilu", "pcg_jacobi"])
    def test_columns_bit_identical_to_single_solves(self, block_subsystem,
                                                    method):
        """solve_block shares one factorization but every column must be
        bit-identical to a standalone solve of that column."""
        a, b, _ = block_subsystem
        solver = LocalSubsystemSolver(method, rtol=1e-14)
        x_block = solver.solve_block(a, b)
        assert x_block.shape == b.shape
        assert len(solver.last_column_stats) == b.shape[1]
        for j in range(b.shape[1]):
            reference = LocalSubsystemSolver(method, rtol=1e-14)
            assert np.array_equal(x_block[:, j], reference.solve(a, b[:, j]))

    def test_factorization_work_amortized(self, block_subsystem):
        """The direct method charges one factorization for the whole block:
        total work < k standalone solves, and per-column bit-identity holds
        regardless."""
        a, b, _ = block_subsystem
        k = b.shape[1]
        block_solver = LocalSubsystemSolver("direct")
        block_solver.solve_block(a, b)
        single = LocalSubsystemSolver("direct")
        single.solve(a, b[:, 0])
        assert block_solver.work_flops() < k * single.work_flops()
        # One factorization (10 nnz) + k triangular solves (2 nnz each).
        assert block_solver.work_flops() == pytest.approx(
            10.0 * a.nnz + k * 2.0 * a.nnz)

    def test_k1_block_equals_single_solve_charges(self, block_subsystem):
        a, b, _ = block_subsystem
        for method in ("direct", "pcg_ilu"):
            block_solver = LocalSubsystemSolver(method, rtol=1e-14)
            x_block = block_solver.solve_block(a, b[:, :1])
            single = LocalSubsystemSolver(method, rtol=1e-14)
            x = single.solve(a, b[:, 0])
            assert np.array_equal(x_block[:, 0], x)
            assert block_solver.work_flops() == single.work_flops()

    def test_rejects_one_dimensional_rhs(self, block_subsystem):
        a, b, _ = block_subsystem
        with pytest.raises(ValueError):
            LocalSubsystemSolver("direct").solve_block(a, b[:, 0])

    def test_empty_block_system(self):
        solver = LocalSubsystemSolver("direct")
        x = solver.solve_block(sp.csr_matrix((0, 0)), np.zeros((0, 3)))
        assert x.shape == (0, 3)
