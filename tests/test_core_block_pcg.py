"""Tests for the lock-step multi-RHS block PCG solver.

Acceptance contract of the block-Krylov subsystem: per-column iterates and
residual histories bit-identical to ``k`` sequential ``DistributedPCG``
solves on the same execution path, allreduce *message* counts independent of
``k`` with volume scaling with ``k``, exact charge equality with the
single-vector solver at ``k = 1``, and column freezing that stops a
column's history exactly where its sequential solve stopped.
"""

import math

import numpy as np
import pytest

from repro.cluster import MachineModel, NodeFailedError, VirtualCluster
from repro.cluster.cost_model import Phase
from repro.core import BlockPCG, DistributedPCG
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedMultiVector,
    DistributedVector,
)
from repro.matrices import poisson_2d
from repro.precond import make_preconditioner

N_NODES = 4


def make_problem(n_grid=12, seed=0, k=4, precond_name="block_jacobi"):
    """Fresh cluster/matrix/context/preconditioner and a random rhs block."""
    a = poisson_2d(n_grid)
    n = a.shape[0]
    partition = BlockRowPartition(n, N_NODES)
    cluster = VirtualCluster(N_NODES, machine=MachineModel(jitter_rel_std=0.0))
    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    context = CommunicationContext.from_matrix(dist)
    precond = make_preconditioner(precond_name)
    precond.setup(a, partition)
    rhs_global = np.random.default_rng(seed).standard_normal((n, k))
    return a, cluster, partition, dist, context, precond, rhs_global


def sequential_solves(a, partition, rhs_global, precond_name, **kwargs):
    """One fresh DistributedPCG solve per column (independent clusters)."""
    results = []
    for j in range(rhs_global.shape[1]):
        cluster = VirtualCluster(N_NODES,
                                 machine=MachineModel(jitter_rel_std=0.0))
        dist = DistributedMatrix.from_global(cluster, partition, "A", a)
        context = CommunicationContext.from_matrix(dist)
        precond = make_preconditioner(precond_name)
        precond.setup(a, partition)
        rhs = DistributedVector.from_global(cluster, partition, "b",
                                            rhs_global[:, j])
        results.append(
            DistributedPCG(dist, rhs, precond, context=context,
                           **kwargs).solve()
        )
    return results


class TestEquivalence:
    @pytest.mark.parametrize("precond_name", ["identity", "jacobi",
                                              "block_jacobi"])
    def test_bit_identical_to_sequential_solves(self, precond_name):
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(precond_name=precond_name)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        block = BlockPCG(dist, rhs, precond, rtol=1e-8, context=context).solve()
        seq = sequential_solves(a, partition, rhs_global, precond_name,
                                rtol=1e-8)
        for j, result in enumerate(seq):
            assert block.iterations[j] == result.iterations
            assert block.converged[j] == result.converged
            assert block.residual_histories[j] == result.residual_norms
            assert np.array_equal(block.x[:, j], result.x)

    def test_bit_identical_with_overlap_spmv(self):
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=1)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        block = BlockPCG(dist, rhs, precond, rtol=1e-8, context=context,
                         overlap_spmv=True).solve()
        seq = sequential_solves(a, partition, rhs_global, "block_jacobi",
                                rtol=1e-8, overlap_spmv=True)
        for j, result in enumerate(seq):
            assert block.residual_histories[j] == result.residual_norms
            assert np.array_equal(block.x[:, j], result.x)

    def test_column_freezing_stops_history_where_sequential_stops(self):
        """Columns converging at different iterations freeze independently;
        a column converged at setup runs zero iterations."""
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=2, k=3)
        # Column 0 is tiny: with atol above its r0 norm it converges at
        # iteration 0 while the others iterate.
        rhs_global[:, 0] *= 1e-14
        atol = 1e-10
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        block = BlockPCG(dist, rhs, precond, rtol=1e-8, atol=atol,
                         context=context).solve()
        seq = sequential_solves(a, partition, rhs_global, "block_jacobi",
                                rtol=1e-8, atol=atol)
        assert block.iterations[0] == 0
        assert len(block.residual_histories[0]) == 1
        assert block.converged[0]
        iteration_counts = {result.iterations for result in seq}
        assert len(iteration_counts) > 1, "columns should converge unevenly"
        for j, result in enumerate(seq):
            assert block.iterations[j] == result.iterations
            assert block.residual_histories[j] == result.residual_norms
            assert np.array_equal(block.x[:, j], result.x)

    def test_solves_the_systems(self):
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=3)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        result = BlockPCG(dist, rhs, precond, rtol=1e-8,
                          context=context).solve()
        assert result.all_converged
        for j in range(rhs_global.shape[1]):
            rel = result.true_residual_norms[j] / \
                np.linalg.norm(rhs_global[:, j])
            assert rel < 1e-7

    def test_initial_guess_block_matches_sequential(self):
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=4, k=2)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        x0 = np.random.default_rng(40).standard_normal(rhs_global.shape)
        block = BlockPCG(dist, rhs, precond, rtol=1e-8,
                         context=context).solve(x0)
        for j in range(rhs_global.shape[1]):
            cluster_j = VirtualCluster(
                N_NODES, machine=MachineModel(jitter_rel_std=0.0))
            dist_j = DistributedMatrix.from_global(cluster_j, partition, "A", a)
            context_j = CommunicationContext.from_matrix(dist_j)
            precond_j = make_preconditioner("block_jacobi")
            precond_j.setup(a, partition)
            rhs_j = DistributedVector.from_global(cluster_j, partition, "b",
                                                  rhs_global[:, j])
            seq = DistributedPCG(dist_j, rhs_j, precond_j, rtol=1e-8,
                                 context=context_j).solve(x0[:, j].copy())
            assert block.residual_histories[j] == seq.residual_norms
            assert np.array_equal(block.x[:, j], seq.x)


class TestCharges:
    def test_k1_charges_identical_to_distributed_pcg(self):
        """At k = 1 the block solver is charge-identical to DistributedPCG
        (same ops, same batched-reduction sizes, same order)."""
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=5, k=1)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        block = BlockPCG(dist, rhs, precond, rtol=1e-8, context=context).solve()
        seq = sequential_solves(a, partition, rhs_global, "block_jacobi",
                                rtol=1e-8)[0]
        assert block.residual_histories[0] == seq.residual_norms
        assert block.time_breakdown == seq.time_breakdown
        assert block.simulated_time == seq.simulated_time

    def fixed_iteration_run(self, k, iterations=5, seed=6):
        """A run of exactly *iterations* lock-step iterations (rtol=0)."""
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=seed, k=k)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        result = BlockPCG(dist, rhs, precond, rtol=0.0, atol=0.0,
                          max_iterations=iterations, context=context).solve()
        assert result.global_iterations == iterations
        assert result.info["n_reductions"] == 2 + 3 * iterations
        return cluster, result

    def test_allreduce_messages_independent_of_k(self):
        iterations = 5
        levels = math.ceil(math.log2(N_NODES))
        # 2 setup reductions (rz, ||r0||) + 3 per iteration, each one
        # collective of 2*levels*N messages whatever the column count.
        expected = (2 + 3 * iterations) * 2 * levels * N_NODES
        stats = {}
        for k in (1, 4):
            cluster, _ = self.fixed_iteration_run(k, iterations)
            stats[k] = (
                cluster.ledger.messages[Phase.ALLREDUCE_COMM],
                cluster.ledger.elements[Phase.ALLREDUCE_COMM],
                cluster.ledger.times[Phase.ALLREDUCE_COMM],
            )
        assert stats[1][0] == stats[4][0] == expected
        assert stats[4][1] == 4 * stats[1][1]
        # Latency amortization: 4 columns cost far less than 4x the
        # single-column allreduce time (only the volume term scales).
        assert stats[4][2] < 1.1 * stats[1][2]

    def test_compute_charges_scale_linearly_with_k(self):
        iterations = 5
        per_k = {}
        for k in (1, 4):
            cluster, _ = self.fixed_iteration_run(k, iterations)
            per_k[k] = {
                phase: cluster.ledger.times[phase]
                for phase in (Phase.VECTOR_COMPUTE, Phase.SPMV_COMPUTE,
                              Phase.PRECOND_COMPUTE)
            }
        for phase, t1 in per_k[1].items():
            assert per_k[4][phase] == pytest.approx(4 * t1)

    def test_halo_messages_independent_of_k(self):
        iterations = 5
        per_k = {}
        for k in (1, 4):
            cluster, _ = self.fixed_iteration_run(k, iterations)
            per_k[k] = (cluster.ledger.messages[Phase.HALO_COMM],
                        cluster.ledger.elements[Phase.HALO_COMM])
        assert per_k[1][0] == per_k[4][0]
        assert per_k[4][1] == 4 * per_k[1][1]


class TestValidation:
    def test_rejects_non_block_diagonal_preconditioner(self):
        a, cluster, partition, dist, context, _, rhs_global = make_problem()
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        ssor = make_preconditioner("ssor")
        ssor.setup(a, partition)
        with pytest.raises(ValueError):
            BlockPCG(dist, rhs, ssor, context=context)

    def test_rejects_incompatible_partitions(self):
        a, cluster, partition, dist, context, precond, _ = make_problem()
        other_cluster = VirtualCluster(
            N_NODES, machine=MachineModel(jitter_rel_std=0.0))
        other_partition = BlockRowPartition(partition.n + 1, N_NODES)
        rhs = DistributedMultiVector.zeros(other_cluster, other_partition,
                                           "B", 2)
        with pytest.raises(ValueError):
            BlockPCG(dist, rhs, precond)

    def test_node_failure_raises_out_of_solve(self):
        """BlockPCG has no recovery; a failure mid-setup must surface."""
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=7, k=2)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        solver = BlockPCG(dist, rhs, precond, rtol=1e-8, context=context)
        cluster.fail_nodes([1])
        with pytest.raises(NodeFailedError):
            solver.solve()

    def test_breakdown_freezes_column(self):
        """An indefinite system drives p^T A p <= 0: the column freezes
        (no NaN contamination of the block) instead of aborting the rest."""
        import scipy.sparse as sp

        n = 16
        diag = np.ones(n)
        diag[::2] = -1.0  # indefinite
        a = sp.diags(diag, format="csr")
        partition = BlockRowPartition(n, N_NODES)
        cluster = VirtualCluster(N_NODES,
                                 machine=MachineModel(jitter_rel_std=0.0))
        dist = DistributedMatrix.from_global(cluster, partition, "A", a)
        context = CommunicationContext.from_matrix(dist)
        precond = make_preconditioner("identity")
        precond.setup(a, partition)
        rng = np.random.default_rng(8)
        rhs_global = rng.standard_normal((n, 2))
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        result = BlockPCG(dist, rhs, precond, rtol=1e-8, max_iterations=50,
                          context=context).solve()
        assert result.info["breakdown_columns"], "expected a CG breakdown"
        assert np.all(np.isfinite(result.x))
        # The reported reduction count stays consistent with the ledger even
        # when a breakdown aborts an iteration after its first reduction.
        levels = math.ceil(math.log2(N_NODES))
        assert cluster.ledger.messages[Phase.ALLREDUCE_COMM] == \
            result.info["n_reductions"] * 2 * levels * N_NODES
