"""Tests for the MPI-like communicator of the virtual cluster."""

import numpy as np
import pytest

from repro.cluster import (
    CommunicationError,
    MachineModel,
    NodeFailedError,
    Phase,
    VirtualCluster,
)


@pytest.fixture
def cluster():
    return VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0))


class TestPointToPoint:
    def test_send_recv_roundtrip(self, cluster):
        payload = np.arange(10.0)
        cluster.comm.send(0, 2, payload)
        received = cluster.comm.recv(2, 0)
        assert np.array_equal(received, payload)

    def test_recv_without_message_raises(self, cluster):
        with pytest.raises(CommunicationError):
            cluster.comm.recv(1)

    def test_send_charges_cost(self, cluster):
        before = cluster.ledger.total_time()
        cluster.comm.send(0, 1, np.arange(100.0))
        assert cluster.ledger.total_time() > before
        assert cluster.ledger.total_elements([Phase.HALO_COMM]) == 100

    def test_send_to_failed_node_raises(self, cluster):
        cluster.fail_nodes([1])
        with pytest.raises(CommunicationError):
            cluster.comm.send(0, 1, 1.0)

    def test_send_from_failed_node_raises(self, cluster):
        cluster.fail_nodes([0])
        with pytest.raises(CommunicationError):
            cluster.comm.send(0, 1, 1.0)

    def test_recv_on_failed_node_raises(self, cluster):
        cluster.comm.send(0, 1, 1.0)
        cluster.fail_nodes([1])
        with pytest.raises(NodeFailedError):
            cluster.comm.recv(1, 0)

    def test_tagged_messages(self, cluster):
        cluster.comm.send(0, 1, "a", tag="first")
        cluster.comm.send(0, 1, "b", tag="second")
        assert cluster.comm.recv(1, 0, tag="second") == "b"
        assert cluster.comm.recv(1, 0, tag="first") == "a"

    def test_pending_and_drop(self, cluster):
        cluster.comm.send(0, 1, 1.0)
        cluster.comm.send(0, 2, 2.0)
        assert cluster.comm.pending_messages() == 2
        cluster.fail_nodes([1])
        assert cluster.comm.pending_messages() == 1


class TestAllreduce:
    def test_sum_of_scalars(self, cluster):
        contributions = {r: float(r + 1) for r in range(4)}
        assert cluster.comm.allreduce_sum(contributions) == pytest.approx(10.0)

    def test_sum_of_arrays(self, cluster):
        contributions = {r: np.full(3, float(r)) for r in range(4)}
        total = cluster.comm.allreduce_sum(contributions)
        assert np.allclose(total, [6.0, 6.0, 6.0])

    def test_missing_contribution_raises(self, cluster):
        with pytest.raises(CommunicationError):
            cluster.comm.allreduce_sum({0: 1.0, 1: 2.0})

    def test_with_failed_node_raises_by_default(self, cluster):
        cluster.fail_nodes([3])
        contributions = {r: 1.0 for r in range(3)}
        with pytest.raises(CommunicationError):
            cluster.comm.allreduce_sum(contributions)

    def test_alive_only_mode(self, cluster):
        cluster.fail_nodes([3])
        contributions = {r: 1.0 for r in range(3)}
        total = cluster.comm.allreduce_sum(contributions, alive_only=True)
        assert total == pytest.approx(3.0)

    def test_charges_allreduce_phase(self, cluster):
        cluster.comm.allreduce_sum({r: 1.0 for r in range(4)})
        assert cluster.ledger.total_time([Phase.ALLREDUCE_COMM]) > 0

    def test_batched_allreduce_message_count_independent_of_width(self, cluster):
        """A k-wide reduction ships one message per tree hop (like a scalar
        one); only the per-hop volume scales with k."""
        stats = {}
        for k in (1, 8):
            before_msgs = cluster.ledger.total_messages([Phase.ALLREDUCE_COMM])
            before_elems = cluster.ledger.total_elements([Phase.ALLREDUCE_COMM])
            cluster.comm.allreduce_sum(
                {r: np.ones(k) for r in range(4)}
            )
            stats[k] = (
                cluster.ledger.total_messages([Phase.ALLREDUCE_COMM]) - before_msgs,
                cluster.ledger.total_elements([Phase.ALLREDUCE_COMM]) - before_elems,
            )
        assert stats[1][0] == stats[8][0]
        assert stats[8][1] == 8 * stats[1][1]

    def test_batched_allreduce_time_matches_model(self, cluster):
        k = 8
        before = cluster.ledger.total_time([Phase.ALLREDUCE_COMM])
        cluster.comm.allreduce_sum({r: np.ones(k) for r in range(4)})
        delta = cluster.ledger.total_time([Phase.ALLREDUCE_COMM]) - before
        assert delta == pytest.approx(
            cluster.ledger.model.allreduce_time(4, k)
        )

    def test_batched_allreduce_sums_in_rank_order(self, cluster):
        """Each component accumulates exactly like the scalar reduction."""
        rng = np.random.default_rng(0)
        payloads = {r: rng.standard_normal(5) for r in range(4)}
        total = cluster.comm.allreduce_sum(payloads)
        for j in range(5):
            scalar = cluster.comm.allreduce_sum(
                {r: float(payloads[r][j]) for r in range(4)}
            )
            assert total[j] == scalar

    def test_mismatched_contribution_sizes_raise(self, cluster):
        contributions = {0: np.ones(3), 1: np.ones(3), 2: np.ones(2),
                         3: np.ones(3)}
        with pytest.raises(CommunicationError):
            cluster.comm.allreduce_sum(contributions)


class TestBroadcastGather:
    def test_bcast_reaches_all(self, cluster):
        out = cluster.comm.bcast(0, 42)
        assert out == {0: 42, 1: 42, 2: 42, 3: 42}

    def test_bcast_failed_root_raises(self, cluster):
        cluster.fail_nodes([0])
        with pytest.raises(CommunicationError):
            cluster.comm.bcast(0, 1, alive_only=True)

    def test_gather_collects(self, cluster):
        contributions = {r: r * 10 for r in range(4)}
        out = cluster.comm.gather(0, contributions)
        assert out == contributions

    def test_gather_charges_messages(self, cluster):
        cluster.comm.gather(0, {r: np.ones(5) for r in range(4)})
        assert cluster.ledger.total_messages([Phase.RECOVERY_COMM]) == 3

    def test_allgather(self, cluster):
        contributions = {r: np.full(2, r) for r in range(4)}
        out = cluster.comm.allgather(contributions)
        assert set(out.keys()) == {0, 1, 2, 3}

    def test_allgather_alive_only(self, cluster):
        cluster.fail_nodes([2])
        contributions = {r: 1.0 for r in (0, 1, 3)}
        out = cluster.comm.allgather(contributions, alive_only=True)
        assert set(out.keys()) == {0, 1, 3}

    def test_barrier(self, cluster):
        before = cluster.ledger.total_time()
        cluster.comm.barrier()
        assert cluster.ledger.total_time() > before

    def test_barrier_with_failure_raises(self, cluster):
        cluster.fail_nodes([1])
        with pytest.raises(CommunicationError):
            cluster.comm.barrier()


class TestQueries:
    def test_alive_and_failed_ranks(self, cluster):
        assert cluster.comm.alive_ranks() == [0, 1, 2, 3]
        cluster.fail_nodes([1, 2])
        assert cluster.comm.alive_ranks() == [0, 3]
        assert cluster.comm.failed_ranks() == [1, 2]

    def test_size(self, cluster):
        assert cluster.comm.size == 4
