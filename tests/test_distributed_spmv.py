"""Tests for the distributed SpMV and its cost accounting."""

import numpy as np
import pytest

from repro.cluster import MachineModel, NodeFailedError, Phase, VirtualCluster
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedVector,
    distributed_spmv,
    ghost_values_for,
    halo_exchange_cost,
    spmv_compute_cost,
)
from repro.matrices import poisson_2d


@pytest.fixture
def setup():
    cluster = VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0))
    a = poisson_2d(10)  # n = 100
    partition = BlockRowPartition(100, 4)
    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    ctx = CommunicationContext.from_matrix(dist)
    return cluster, partition, a, dist, ctx


class TestNumerics:
    def test_matches_scipy(self, setup):
        cluster, partition, a, dist, ctx = setup
        rng = np.random.default_rng(0)
        x_values = rng.standard_normal(100)
        x = DistributedVector.from_global(cluster, partition, "x", x_values)
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, ctx)
        assert np.allclose(y.to_global(), a @ x_values)

    def test_without_prebuilt_context(self, setup):
        cluster, partition, a, dist, _ = setup
        x = DistributedVector.from_global(cluster, partition, "x", np.ones(100))
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y)
        assert np.allclose(y.to_global(), a @ np.ones(100))

    def test_repeated_spmv(self, setup):
        cluster, partition, a, dist, ctx = setup
        x = DistributedVector.from_global(cluster, partition, "x", np.arange(100.0))
        y = DistributedVector.zeros(cluster, partition, "y")
        for _ in range(3):
            distributed_spmv(dist, x, y, ctx)
        assert np.allclose(y.to_global(), a @ np.arange(100.0))

    def test_partition_mismatch_rejected(self, setup):
        cluster, partition, a, dist, ctx = setup
        other = BlockRowPartition(100, 2)
        other_cluster = VirtualCluster(2)
        x = DistributedVector.zeros(other_cluster, other, "x")
        y = DistributedVector.zeros(cluster, partition, "y")
        with pytest.raises(ValueError):
            distributed_spmv(dist, x, y, ctx)

    def test_fails_when_owner_failed(self, setup):
        cluster, partition, _, dist, ctx = setup
        x = DistributedVector.from_global(cluster, partition, "x", np.ones(100))
        y = DistributedVector.zeros(cluster, partition, "y")
        cluster.fail_nodes([2])
        with pytest.raises(NodeFailedError):
            distributed_spmv(dist, x, y, ctx)


class TestCosts:
    def test_charges_halo_and_compute(self, setup):
        cluster, partition, _, dist, ctx = setup
        x = DistributedVector.from_global(cluster, partition, "x", np.ones(100))
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, ctx)
        assert cluster.ledger.total_time([Phase.HALO_COMM]) > 0
        assert cluster.ledger.total_time([Phase.SPMV_COMPUTE]) > 0

    def test_uncharged_mode(self, setup):
        cluster, partition, _, dist, ctx = setup
        x = DistributedVector.from_global(cluster, partition, "x", np.ones(100))
        y = DistributedVector.zeros(cluster, partition, "y")
        before = cluster.simulated_time()
        distributed_spmv(dist, x, y, ctx, charge=False)
        assert cluster.simulated_time() == before

    def test_halo_cost_formula(self, setup):
        cluster, _, _, dist, ctx = setup
        model = cluster.machine
        topo = cluster.topology
        time, n_msg, n_elem = halo_exchange_cost(ctx, topo, model)
        assert n_msg == ctx.total_messages()
        assert n_elem == ctx.total_exchanged_elements()
        # max over receivers of the summed incoming message costs
        expected = 0.0
        for dst in range(4):
            total = sum(
                model.message_time(topo.latency(src, dst), ctx.send_count(src, dst))
                for src in ctx.senders_to(dst)
            )
            expected = max(expected, total)
        assert time == pytest.approx(expected)

    def test_compute_cost_is_max_over_nodes(self, setup):
        cluster, _, _, dist, _ = setup
        model = cluster.machine
        expected = max(model.spmv_time(dist.nnz_of(r)) for r in range(4))
        assert spmv_compute_cost(dist, model) == pytest.approx(expected)

    def test_traffic_counters(self, setup):
        cluster, partition, _, dist, ctx = setup
        x = DistributedVector.from_global(cluster, partition, "x", np.ones(100))
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, ctx)
        assert cluster.ledger.total_elements([Phase.HALO_COMM]) == \
            ctx.total_exchanged_elements()


class TestGhostValues:
    def test_ghost_values_match_blocks(self, setup):
        cluster, partition, _, dist, ctx = setup
        values = np.arange(100.0)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        for dst in range(4):
            ghosts = ghost_values_for(ctx, x, dst)
            for src, vals in ghosts.items():
                idx = ctx.send_indices(src, dst)
                assert np.array_equal(vals, values[idx])
