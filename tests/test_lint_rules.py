"""Tests for the project linter (`repro.lint`).

Contract: every rule ID fires on a synthetic fixture containing the
violation it documents and stays quiet on the sanctioned counterpart;
``# noqa`` and the pinned allowlists suppress findings; the CLI maps
clean/violations/errors to exit codes 0/1/2; and the real source tree is
clean under all rules (the invariant CI enforces).
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import LintError, Project, SourceFile, Violation, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.engine import dotted_name, path_matches
from repro.lint.registry import ALL_RULES, get_rule, rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_module(tmp_path, source, rel="mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def lint_tree(tmp_path, *, tests_dir=None, select=None):
    return run_lint([tmp_path], rules=ALL_RULES, tests_dir=tests_dir,
                    select=select)


def fired_ids(violations):
    return sorted({v.rule_id for v in violations})


class TestRegistry:
    def test_rule_ids_complete_and_ordered(self):
        assert list(rule_ids()) == \
            ["R001", "R002", "R003", "R004", "R005",
             "R006", "R007", "R008", "R009", "R010"]

    def test_get_rule_round_trips(self):
        for rule_id in rule_ids():
            assert get_rule(rule_id).id == rule_id

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError):
            get_rule("R999")

    def test_every_rule_documented(self):
        for rule in ALL_RULES:
            assert rule.title
            assert rule.__class__.__doc__


class TestR001UnseededRng:
    @pytest.mark.parametrize("source", [
        "import random\n",
        "from random import choice\n",
        "import numpy as np\nx = np.random.rand(3)\n",
        "import numpy as np\nrng = np.random.RandomState(0)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(None)\n",
        "import numpy as np\nrng = np.random.default_rng(seed=None)\n",
    ])
    def test_fires(self, tmp_path, source):
        write_module(tmp_path, source)
        assert fired_ids(lint_tree(tmp_path, tests_dir=tmp_path)) == ["R001"]

    @pytest.mark.parametrize("source", [
        "import numpy as np\nrng = np.random.default_rng(42)\n",
        "import numpy as np\nrng = np.random.default_rng(seed=7)\n",
        "import numpy as np\ng = np.random.Generator(np.random.PCG64(1))\n",
    ])
    def test_clean(self, tmp_path, source):
        write_module(tmp_path, source)
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []

    def test_allowlisted_rng_module(self, tmp_path):
        write_module(tmp_path, "import numpy as np\nx = np.random.rand()\n",
                     rel="utils/rng.py")
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []


class TestR002Wallclock:
    @pytest.mark.parametrize("source", [
        "import time\nt = time.time()\n",
        "import time\nt = time.perf_counter\n",
        "from time import perf_counter\n",
        "import datetime\nnow = datetime.datetime.now()\n",
    ])
    def test_fires(self, tmp_path, source):
        write_module(tmp_path, source)
        assert fired_ids(lint_tree(tmp_path, tests_dir=tmp_path)) == ["R002"]

    def test_non_wallclock_time_use_is_clean(self, tmp_path):
        write_module(tmp_path, "import time\ntime.sleep(0.1)\n")
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []

    @pytest.mark.parametrize("rel", [
        "harness/experiment.py", "core/reconstruction.py",
    ])
    def test_allowlisted_timing_modules(self, tmp_path, rel):
        write_module(tmp_path, "import time\nt = time.perf_counter()\n",
                     rel=rel)
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []


class TestR003RegisteredNames:
    REGISTRATION = """\
        from repro.core.registry import register_solver

        @register_solver("ghost_solver")
        def build(problem, spec):
            return None
    """

    def test_uncovered_name_fires(self, tmp_path):
        write_module(tmp_path, self.REGISTRATION)
        tests_dir = tmp_path / "tests"
        write_module(tests_dir, "def test_nothing():\n    assert True\n",
                     rel="test_something.py")
        violations = lint_tree(tmp_path, tests_dir=tests_dir)
        assert fired_ids(violations) == ["R003"]
        assert "ghost_solver" in violations[0].message

    def test_covered_name_is_clean(self, tmp_path):
        write_module(tmp_path, self.REGISTRATION)
        tests_dir = tmp_path / "tests"
        write_module(tests_dir,
                     'NAMES = ["ghost_solver"]\n'
                     "def test_names():\n    assert NAMES\n",
                     rel="test_something.py")
        assert lint_tree(tmp_path, tests_dir=tests_dir) == []

    PLACEMENT_REGISTRATION = """\
        from repro.core.placement import register_placement

        @register_placement("ghost_placement", "test-only strategy")
        def targets(owner, phi, n_nodes, *, racks=None, rng=None):
            return []
    """

    def test_uncovered_placement_name_fires(self, tmp_path):
        write_module(tmp_path, self.PLACEMENT_REGISTRATION)
        tests_dir = tmp_path / "tests"
        write_module(tests_dir, "def test_nothing():\n    assert True\n",
                     rel="test_something.py")
        violations = lint_tree(tmp_path, tests_dir=tests_dir)
        assert fired_ids(violations) == ["R003"]
        assert "ghost_placement" in violations[0].message

    def test_covered_placement_name_is_clean(self, tmp_path):
        write_module(tmp_path, self.PLACEMENT_REGISTRATION)
        tests_dir = tmp_path / "tests"
        write_module(tests_dir,
                     'NAMES = ["ghost_placement"]\n'
                     "def test_names():\n    assert NAMES\n",
                     rel="test_something.py")
        assert lint_tree(tmp_path, tests_dir=tests_dir) == []

    def test_missing_tests_dir_is_a_finding(self, tmp_path):
        src = SourceFile.parse(
            write_module(tmp_path, self.REGISTRATION), "mod.py")
        project = Project([src], tests_dir=None)
        violations = list(get_rule("R003").check_project(project))
        assert len(violations) == 1
        assert "no tests/ directory" in violations[0].message


class TestR004NodeMemoryAccess:
    @pytest.mark.parametrize("source", [
        "def peek(node):\n    return node.memory['x']\n",
        "from repro.cluster.node import NodeMemory\n",
        "from repro.distributed.blockstore import NodeBlockStore\n",
    ])
    def test_fires(self, tmp_path, source):
        write_module(tmp_path, source)
        assert fired_ids(lint_tree(tmp_path, tests_dir=tmp_path)) == ["R004"]

    @pytest.mark.parametrize("rel", [
        "cluster/node.py", "distributed/blockstore.py", "core/esr.py",
        "sanitizer.py",
    ])
    def test_storage_layer_allowlisted(self, tmp_path, rel):
        write_module(tmp_path,
                     "def peek(node):\n    return node.memory['x']\n",
                     rel=rel)
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []

    def test_get_block_is_clean(self, tmp_path):
        write_module(tmp_path,
                     "def peek(vec, rank):\n    return vec.get_block(rank)\n")
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []


class TestR005UnorderedIteration:
    @pytest.mark.parametrize("source", [
        "for x in {1, 2, 3}:\n    print(x)\n",
        "total = 0.0\nfor x in set(range(4)):\n    total += x\n",
        "vals = [x for x in frozenset((1, 2))]\n",
        "def f(times, snap):\n"
        "    keys = set(times) | set(snap)\n"
        "    return sum(times[k] for k in keys)\n",
    ])
    def test_fires(self, tmp_path, source):
        write_module(tmp_path, source)
        assert fired_ids(lint_tree(tmp_path, tests_dir=tmp_path)) == ["R005"]

    @pytest.mark.parametrize("source", [
        "for x in sorted({1, 2, 3}):\n    print(x)\n",
        "for x in [1, 2, 3]:\n    print(x)\n",
        # set-into-set is order-insensitive and sanctioned
        "doubled = {2 * x for x in {1, 2}}\n",
        # a name demoted from set to list is no longer flagged
        "s = set()\ns = [1, 2]\nfor x in s:\n    print(x)\n",
        # local set names do not leak into other functions
        "def f():\n    s = {1}\n    return s\n"
        "def g(s):\n    return [x for x in s]\n",
    ])
    def test_clean(self, tmp_path, source):
        write_module(tmp_path, source)
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []

    def test_augmented_set_ops_keep_the_type(self, tmp_path):
        write_module(tmp_path,
                     "def f(extra):\n"
                     "    s = {1}\n"
                     "    s |= extra\n"
                     "    return [x for x in s]\n")
        assert fired_ids(lint_tree(tmp_path, tests_dir=tmp_path)) == ["R005"]


class TestR006FrozenSpecs:
    @pytest.mark.parametrize("source", [
        "def f(x, acc=[]):\n    return acc\n",
        "def f(x, *, cache={}):\n    return cache\n",
        "def f(opts=dict()):\n    return opts\n",
        "def patch(spec):\n    object.__setattr__(spec, 'rtol', 0.0)\n",
    ])
    def test_fires(self, tmp_path, source):
        write_module(tmp_path, source)
        assert fired_ids(lint_tree(tmp_path, tests_dir=tmp_path)) == ["R006"]

    @pytest.mark.parametrize("source", [
        "def f(x, acc=None):\n    return acc or []\n",
        "def f(x, n=3, name='a', flag=True):\n    return x\n",
    ])
    def test_clean(self, tmp_path, source):
        write_module(tmp_path, source)
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []

    def test_spec_module_allowlisted(self, tmp_path):
        write_module(tmp_path,
                     "def norm(spec):\n"
                     "    object.__setattr__(spec, 'phi', 1)\n",
                     rel="core/spec.py")
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []


class TestR007NondeterminismFlow:
    """Interprocedural taint: nondeterminism must not reach a sink."""

    LAUNDERED_WALLCLOCK = """\
        import time

        def measure():
            return time.perf_counter()

        def run(ledger):
            ledger.add_time(measure())
    """

    def test_interprocedural_flow_fires_with_trace(self, tmp_path):
        write_module(tmp_path, self.LAUNDERED_WALLCLOCK)
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R007"])
        assert fired_ids(violations) == ["R007"]
        (violation,) = violations
        # Anchored at the *source* (the perf_counter read), not the sink.
        assert violation.path == "mod.py"
        assert violation.line == 4
        assert "wallclock" in violation.message
        assert "CostLedger charge" in violation.message
        # The message carries the full hop trace across both functions.
        assert "mod.py:4 -> mod.py:7" in violation.message

    def test_unseeded_rng_receiver_into_payload_fires(self, tmp_path):
        write_module(tmp_path, """\
            import numpy as np

            def ship(comm):
                rng = np.random.default_rng()
                comm.send(0, 1, rng.normal(size=3))
        """)
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R007"])
        assert fired_ids(violations) == ["R007"]
        assert "unseeded RNG" in violations[0].message
        assert "Communicator payload" in violations[0].message

    def test_seeded_rng_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            import numpy as np

            def ship(comm):
                rng = np.random.default_rng(42)
                comm.send(0, 1, rng.normal(size=3))
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R007"]) == []

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            def total(ledger, ranks):
                acc = 0.0
                for r in sorted({1, 2, 3}):
                    acc += r
                ledger.add_time(acc)
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R007"]) == []

    def test_noqa_on_the_source_line_suppresses(self, tmp_path):
        write_module(tmp_path, """\
            import time

            def measure():
                return time.perf_counter()  # noqa: R007

            def run(ledger):
                ledger.add_time(measure())
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R007"]) == []

    def test_allowlisted_source_module_is_exempt(self, tmp_path):
        # R007 anchors at the taint origin, so the allowlisted modules are
        # the ones sanctioned to *produce* nondeterminism.
        write_module(tmp_path, self.LAUNDERED_WALLCLOCK,
                     rel="harness/experiment.py")
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R007"]) == []


class TestR008ChargeCoverage:
    def test_mailbox_access_outside_cluster_fires(self, tmp_path):
        write_module(tmp_path,
                     "def peek(comm):\n    return comm._mailboxes\n")
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R008"])
        assert fired_ids(violations) == ["R008"]
        assert "_mailboxes" in violations[0].message

    def test_mailbox_access_inside_cluster_is_clean(self, tmp_path):
        write_module(tmp_path,
                     "def peek(comm):\n    return comm._mailboxes\n",
                     rel="cluster/communicator.py")
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R008"]) == []

    UNCHARGED_PRIMITIVE = """\
        class Communicator:
            def send(self, src, dst, payload):
                self._deliver(payload)

            def _deliver(self, payload):
                self.box = payload
    """

    def test_primitive_without_charging_site_fires(self, tmp_path):
        write_module(tmp_path, self.UNCHARGED_PRIMITIVE,
                     rel="cluster/communicator.py")
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R008"])
        assert fired_ids(violations) == ["R008"]
        assert "Communicator.send" in violations[0].message
        assert "charging site" in violations[0].message

    def test_primitive_charging_through_helper_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            class Communicator:
                def send(self, src, dst, payload):
                    self._deliver(payload)

                def _deliver(self, payload):
                    self.ledger.add_traffic(len(payload))
        """, rel="cluster/communicator.py")
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R008"]) == []

    UNCHARGED_CALL = """\
        from repro.core.registry import register_solver

        @register_solver("probe")
        def build(problem, spec):
            return push(problem)

        def push(problem):
            problem.comm.send(0, 1, [1.0], charge=False)
    """

    def test_uncharged_call_fires_with_entry_trace(self, tmp_path):
        write_module(tmp_path, self.UNCHARGED_CALL)
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R008"])
        assert fired_ids(violations) == ["R008"]
        (violation,) = violations
        assert "charge=False" in violation.message
        # The registered entry point that reaches the call is traced.
        assert "reached via" in violation.message
        assert " -> " in violation.message

    def test_uncharged_call_with_explicit_charge_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            def push(problem):
                problem.comm.send(0, 1, [1.0], charge=False)
                problem.ledger.add_time(0.5)
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R008"]) == []

    def test_allowlist_exempts_flagged_module(self, tmp_path, monkeypatch):
        from repro.lint.allowlists import ALLOWLISTS
        monkeypatch.setitem(ALLOWLISTS, "R008", ("legacy/*",))
        write_module(tmp_path,
                     "def peek(comm):\n    return comm._mailboxes\n",
                     rel="legacy/mod.py")
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R008"]) == []

    def test_noqa_suppresses(self, tmp_path):
        write_module(
            tmp_path,
            "def peek(comm):\n"
            "    return comm._mailboxes  # noqa: R008\n")
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R008"]) == []


class TestR009CollectiveConsistency:
    def test_literal_rank_dict_fires(self, tmp_path):
        write_module(tmp_path, """\
            def agg(comm):
                return comm.allreduce_sum({0: 1.0, 3: 2.0})
        """)
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R009"])
        assert fired_ids(violations) == ["R009"]
        assert "literal rank subset" in violations[0].message
        assert "alive_ranks()" in violations[0].message

    def test_literal_dict_via_local_name_fires(self, tmp_path):
        write_module(tmp_path, """\
            def agg(comm):
                contribs = {0: 1.0, 1: 2.0}
                return comm.gather(0, contribs)
        """)
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R009"])
        assert fired_ids(violations) == ["R009"]

    def test_loop_built_dict_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            def agg(comm):
                contribs = {0: 0.0}
                for r in comm.alive_ranks():
                    contribs[r] = 1.0
                return comm.allreduce_sum(contribs)
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R009"]) == []

    def test_alive_ranks_comprehension_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            def agg(comm):
                return comm.allreduce_sum(
                    {r: 1.0 for r in comm.alive_ranks()})
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R009"]) == []

    def test_unmatched_send_tag_fires(self, tmp_path):
        write_module(tmp_path, """\
            def a(comm):
                comm.send(0, 1, [1.0], tag="halo")

            def b(comm):
                comm.recv(1, tag="other")
        """)
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R009"])
        assert fired_ids(violations) == ["R009"]
        assert "'halo'" in violations[0].message
        assert "no matching recv" in violations[0].message

    def test_matched_send_tag_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            def a(comm):
                comm.send(0, 1, [1.0], tag="halo")

            def b(comm):
                comm.recv(1, tag="halo")
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R009"]) == []

    def test_default_tags_match_both_sides(self, tmp_path):
        write_module(tmp_path, """\
            def a(comm):
                comm.send(0, 1, [1.0])

            def b(comm):
                comm.recv(1)
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R009"]) == []

    def test_dynamic_recv_tag_mutes_the_check(self, tmp_path):
        write_module(tmp_path, """\
            def a(comm):
                comm.send(0, 1, [1.0], tag="halo")

            def b(comm, t):
                comm.recv(1, tag=t)
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R009"]) == []

    def test_allowlist_exempts_flagged_module(self, tmp_path, monkeypatch):
        from repro.lint.allowlists import ALLOWLISTS
        monkeypatch.setitem(ALLOWLISTS, "R009", ("legacy/*",))
        write_module(tmp_path,
                     "def agg(comm):\n"
                     "    return comm.allreduce_sum({0: 1.0})\n",
                     rel="legacy/mod.py")
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R009"]) == []

    def test_noqa_suppresses(self, tmp_path):
        write_module(
            tmp_path,
            "def agg(comm):\n"
            "    return comm.allreduce_sum({0: 1.0})  # noqa: R009\n")
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R009"]) == []


class TestR010HookContract:
    BROKEN_OVERRIDE = """\
        class DistributedPCG:
            def _after_spmv(self, iteration):
                pass

        class EagerMixin(DistributedPCG):
            def _after_spmv(self, iteration):
                self.count = iteration
    """

    def test_override_without_super_fires(self, tmp_path):
        write_module(tmp_path, self.BROKEN_OVERRIDE)
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R010"])
        assert fired_ids(violations) == ["R010"]
        assert "EagerMixin._after_spmv" in violations[0].message
        assert "super()._after_spmv()" in violations[0].message

    def test_override_calling_super_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            class DistributedPCG:
                def _after_spmv(self, iteration):
                    pass

            class PoliteMixin(DistributedPCG):
                def _after_spmv(self, iteration):
                    super()._after_spmv(iteration)
                    self.count = iteration
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R010"]) == []

    def test_trivial_protocol_declaration_is_exempt(self, tmp_path):
        write_module(tmp_path, """\
            class DistributedPCG:
                def _on_setup(self):
                    '''Extension point.'''

                def _handle_failures(self, iteration):
                    return False
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R010"]) == []

    RAW_RECOVERY_WRITE = """\
        class Solver:
            def _handle_failures(self, iteration):
                super()._handle_failures(iteration)
                self._restore()
                return True

            def _restore(self):
                self.x.set_block(0, [0.0])
    """

    def test_raw_set_block_in_recovery_fires_with_trace(self, tmp_path):
        write_module(tmp_path, self.RAW_RECOVERY_WRITE)
        violations = lint_tree(tmp_path, tests_dir=tmp_path,
                               select=["R010"])
        assert fired_ids(violations) == ["R010"]
        (violation,) = violations
        # Anchored at the write site, reached through the handler.
        assert violation.line == 8
        assert "restore_block" in violation.message
        # Handler definition -> self-call site -> write site.
        assert "mod.py:2 -> mod.py:4 -> mod.py:8" in violation.message

    def test_restore_block_in_recovery_is_clean(self, tmp_path):
        write_module(tmp_path, """\
            class Solver:
                def _handle_failures(self, iteration):
                    super()._handle_failures(iteration)
                    self.x.restore_block(0, [0.0])
                    return True
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R010"]) == []

    def test_allowlist_exempts_flagged_module(self, tmp_path, monkeypatch):
        from repro.lint.allowlists import ALLOWLISTS
        monkeypatch.setitem(ALLOWLISTS, "R010", ("legacy/*",))
        write_module(tmp_path, self.BROKEN_OVERRIDE, rel="legacy/mod.py")
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R010"]) == []

    def test_noqa_on_the_write_site_suppresses(self, tmp_path):
        write_module(tmp_path, """\
            class Solver:
                def _handle_failures(self, iteration):
                    super()._handle_failures(iteration)
                    self.x.set_block(0, [0.0])  # noqa: R010
                    return True
        """)
        assert lint_tree(tmp_path, tests_dir=tmp_path,
                         select=["R010"]) == []


class TestEngineBehavior:
    def test_noqa_bare_suppresses(self, tmp_path):
        write_module(tmp_path, "import random  # noqa\n")
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []

    def test_noqa_with_matching_code_suppresses(self, tmp_path):
        write_module(tmp_path, "import random  # noqa: R001\n")
        assert lint_tree(tmp_path, tests_dir=tmp_path) == []

    def test_noqa_with_other_code_does_not_suppress(self, tmp_path):
        write_module(tmp_path, "import random  # noqa: R002\n")
        assert fired_ids(lint_tree(tmp_path, tests_dir=tmp_path)) == ["R001"]

    def test_select_restricts_rules(self, tmp_path):
        write_module(tmp_path, "import random\nimport time\nt = time.time()\n")
        violations = lint_tree(tmp_path, tests_dir=tmp_path, select=["R002"])
        assert fired_ids(violations) == ["R002"]

    def test_unknown_select_rejected(self, tmp_path):
        write_module(tmp_path, "x = 1\n")
        with pytest.raises(LintError, match="unknown rule id"):
            lint_tree(tmp_path, tests_dir=tmp_path, select=["R042"])

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(LintError, match="no such file"):
            lint_tree(tmp_path / "nope", tests_dir=tmp_path)

    def test_unparseable_file_rejected(self, tmp_path):
        write_module(tmp_path, "def broken(:\n")
        with pytest.raises(LintError, match="cannot parse"):
            lint_tree(tmp_path, tests_dir=tmp_path)

    def test_violations_sorted_and_formatted(self, tmp_path):
        write_module(tmp_path, "import time\nt = time.time()\nimport random\n")
        violations = lint_tree(tmp_path, tests_dir=tmp_path)
        assert [v.line for v in violations] == \
            sorted(v.line for v in violations)
        first = violations[0]
        assert first.format() == \
            f"{first.path}:{first.line}:{first.col}: " \
            f"{first.rule_id} {first.message}"

    def test_path_matches_suffix(self):
        assert path_matches("utils/rng.py", ("utils/rng.py",))
        assert path_matches("repro/utils/rng.py", ("utils/rng.py",))
        assert not path_matches("utils/other.py", ("utils/rng.py",))

    def test_dotted_name(self):
        import ast
        expr = ast.parse("a.b.c()").body[0].value
        assert dotted_name(expr.func) == "a.b.c"
        assert dotted_name(ast.parse("f()").body[0].value.func) == "f"

    def test_violation_is_frozen(self):
        violation = Violation("R001", "mod.py", 1, 0, "msg")
        with pytest.raises(AttributeError):
            violation.line = 2


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_module(tmp_path, "x = 1\n")
        code = lint_main([str(tmp_path), "--tests-dir", str(tmp_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one_and_print(self, tmp_path, capsys):
        write_module(tmp_path, "import random\n")
        code = lint_main([str(tmp_path), "--tests-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "R001" in captured.out
        assert "violation" in captured.err

    def test_bad_select_exits_two(self, tmp_path, capsys):
        write_module(tmp_path, "x = 1\n")
        code = lint_main([str(tmp_path), "--select", "R042"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_select_flag(self, tmp_path):
        write_module(tmp_path, "import random\n")
        assert lint_main([str(tmp_path), "--tests-dir", str(tmp_path),
                          "--select", "R002"]) == 0

    def test_list_rules_documents_all_ids(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_json_format_clean_tree(self, tmp_path, capsys):
        import json
        write_module(tmp_path, "x = 1\n")
        code = lint_main([str(tmp_path), "--tests-dir", str(tmp_path),
                          "--format", "json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["violation_count"] == 0
        assert report["violations"] == []
        assert report["rules"] == list(rule_ids())
        assert report["paths"] == [str(tmp_path)]

    def test_json_format_reports_violations(self, tmp_path, capsys):
        import json
        write_module(tmp_path, "import random\n")
        code = lint_main([str(tmp_path), "--tests-dir", str(tmp_path),
                          "--format", "json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["violation_count"] == 1
        (entry,) = report["violations"]
        assert set(entry) == {"rule_id", "path", "line", "col", "message"}
        assert entry["rule_id"] == "R001"
        assert entry["path"] == "mod.py"
        assert entry["line"] == 1

    def test_json_report_is_stable(self, tmp_path, capsys):
        write_module(tmp_path, "import random\nimport time\nt = time.time()\n")
        args = [str(tmp_path), "--tests-dir", str(tmp_path),
                "--format", "json"]
        lint_main(args)
        first = capsys.readouterr().out
        lint_main(args)
        assert capsys.readouterr().out == first

    def test_explain_prints_rule_doc_and_allowlist(self, capsys):
        assert lint_main(["--explain", "R007"]) == 0
        out = capsys.readouterr().out
        assert "R007" in out
        assert "allowlist:" in out
        assert "utils/rng.py" in out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--explain", "R999"]) == 2
        assert "R999" in capsys.readouterr().err


class TestRealTreeIsClean:
    """The invariant the CI lint job enforces, asserted from the suite too."""

    def test_src_repro_is_clean(self):
        violations = run_lint([REPO_ROOT / "src" / "repro"], rules=ALL_RULES,
                              tests_dir=REPO_ROOT / "tests")
        assert violations == [], "\n".join(v.format() for v in violations)
