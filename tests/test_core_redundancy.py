"""Tests for the redundancy scheme (Eqns. 2-6 of the paper)."""

import numpy as np
import pytest

from repro.cluster import MachineModel, VirtualCluster
from repro.core.redundancy import (
    BackupPlacement,
    RedundancyScheme,
    backup_targets,
    paper_backup_target,
)
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
)
from repro.matrices import graph_laplacian_spd, poisson_1d, poisson_2d, banded_spd


def make_scheme(matrix, n_nodes, phi, placement=BackupPlacement.PAPER):
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(matrix.shape[0], n_nodes)
    dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
    context = CommunicationContext.from_matrix(dist)
    return cluster, dist, RedundancyScheme(context, phi, placement=placement)


class TestBackupTargets:
    def test_paper_formula_eqn5(self):
        # d_ik = (i + ceil(k/2)) mod N for odd k, (i - k/2) mod N for even k
        n = 8
        assert paper_backup_target(3, 1, n) == 4
        assert paper_backup_target(3, 2, n) == 2
        assert paper_backup_target(3, 3, n) == 5
        assert paper_backup_target(3, 4, n) == 1
        assert paper_backup_target(3, 5, n) == 6

    def test_paper_formula_wraps(self):
        assert paper_backup_target(7, 1, 8) == 0
        assert paper_backup_target(0, 2, 8) == 7

    def test_invalid_round_index(self):
        with pytest.raises(ValueError):
            paper_backup_target(0, 0, 8)

    @pytest.mark.parametrize("placement", list(BackupPlacement))
    @pytest.mark.parametrize("phi", [1, 2, 3, 5])
    def test_targets_distinct_and_exclude_owner(self, placement, phi):
        n = 8
        for owner in range(n):
            targets = backup_targets(owner, phi, n, placement)
            assert len(targets) == phi
            assert len(set(targets)) == phi
            assert owner not in targets

    def test_alternating_neighbours(self):
        targets = backup_targets(4, 4, 10, BackupPlacement.PAPER)
        assert targets == [5, 3, 6, 2]

    def test_next_ranks_placement(self):
        targets = backup_targets(6, 3, 8, BackupPlacement.NEXT_RANKS)
        assert targets == [7, 0, 1]

    def test_phi_too_large_rejected(self):
        with pytest.raises(ValueError):
            backup_targets(0, 8, 8)

    def test_phi_zero(self):
        assert backup_targets(0, 0, 8) == []

    def test_invalid_owner(self):
        with pytest.raises(ValueError):
            backup_targets(9, 1, 8)


class TestChenSingleFailure:
    def test_chen_sets_are_unsent_elements(self):
        a = poisson_2d(12)
        _, _, scheme = make_scheme(a, 6, 1)
        chen = scheme.chen_single_failure_sets()
        for owner in range(6):
            assert np.array_equal(chen[owner],
                                  scheme.context.unsent_indices(owner))

    def test_phi1_paper_scheme_matches_chen(self):
        # For phi = 1 and the paper placement (d_i1 = i+1), the extra set of
        # round 1 equals Chen's R^c_i (elements with m_i(s) = 0) whenever the
        # element is not naturally sent to node i+1 -- for banded matrices the
        # two sets coincide exactly.
        a = poisson_1d(60)
        _, _, scheme = make_scheme(a, 6, 1)
        chen = scheme.chen_single_failure_sets()
        for owner in range(6):
            assert np.array_equal(scheme.extra_indices(owner, 1), chen[owner])

    def test_chen_loses_data_for_adjacent_double_failure(self):
        # Sec. 3: if nodes i and i+1 fail simultaneously and R^c_i != {}, the
        # elements of R^c_i (kept only on i and i+1) are lost.
        a = poisson_1d(60)
        _, _, scheme = make_scheme(a, 6, 1)
        owner = 2
        chen_set = scheme.chen_single_failure_sets()[owner]
        assert chen_set.size > 0
        # copies exist only on the owner and on owner+1 under Chen's scheme,
        # so a simultaneous failure of both loses them; the phi = 2 scheme
        # places an additional copy elsewhere.
        _, _, scheme2 = make_scheme(a, 6, 2)
        counts = scheme2.copy_count(owner)
        start, _ = scheme2.partition.range_of(owner)
        assert np.all(counts[chen_set - start] >= 2)


class TestEqn6:
    @pytest.mark.parametrize("matrix_builder, n_nodes", [
        (lambda: poisson_1d(64), 8),
        (lambda: poisson_2d(12), 6),
        (lambda: graph_laplacian_spd(240, avg_degree=5, seed=0), 8),
        (lambda: banded_spd(160, half_bandwidth=30, seed=1), 8),
    ])
    @pytest.mark.parametrize("phi", [1, 2, 3])
    def test_redundancy_invariant(self, matrix_builder, n_nodes, phi):
        """Every element ends up on >= phi distinct non-owner nodes."""
        _, _, scheme = make_scheme(matrix_builder(), n_nodes, phi)
        assert scheme.verify_invariant()

    def test_round_condition_gets_stricter(self):
        # The multiplicity condition of Eqn. (6), m_i(s) - g_i(s) <= phi - k,
        # admits fewer and fewer elements as the round index k grows; for
        # elements that are never sent anywhere (Chen's R^c_i) it holds in
        # every round, so they are shipped to every designated backup.
        a = banded_spd(240, half_bandwidth=40, fill=0.9, seed=0)
        _, _, scheme = make_scheme(a, 8, 3)
        for owner in range(8):
            info = scheme.owner(owner)
            deficit = info.multiplicity - info.natural_backup_count
            eligible = [int(np.sum(deficit <= 3 - k)) for k in (1, 2, 3)]
            assert eligible == sorted(eligible, reverse=True)
            start, _ = scheme.partition.range_of(owner)
            never_sent = scheme.context.unsent_indices(owner)
            for k in (1, 2, 3):
                assert np.isin(never_sent, scheme.extra_indices(owner, k)).all()

    def test_extras_exclude_naturally_sent_to_target(self):
        a = poisson_2d(16)
        _, _, scheme = make_scheme(a, 8, 3)
        for owner in range(8):
            for k in range(1, 4):
                target = scheme.targets_of(owner)[k - 1]
                extra = scheme.extra_indices(owner, k)
                natural = scheme.context.send_indices(owner, target)
                assert np.intersect1d(extra, natural).size == 0

    def test_no_extras_when_naturally_covered(self):
        # A dense-enough matrix sends everything to >= phi nodes already.
        import scipy.sparse as sp
        dense = sp.csr_matrix(np.ones((32, 32)) + 32 * np.eye(32))
        _, _, scheme = make_scheme(dense, 4, 3)
        assert scheme.total_extra_elements() == 0
        assert scheme.verify_invariant()

    def test_phi_zero_scheme_is_empty(self):
        a = poisson_2d(8)
        _, _, scheme = make_scheme(a, 4, 0)
        assert scheme.total_extra_elements() == 0
        assert scheme.verify_invariant()

    def test_phi_must_be_less_than_n(self):
        a = poisson_2d(8)
        with pytest.raises(ValueError):
            make_scheme(a, 4, 4)

    def test_copies_are_minimal_for_unsent_elements(self):
        # An element that is never sent naturally gets exactly phi copies.
        a = poisson_1d(60)
        _, _, scheme = make_scheme(a, 6, 3)
        for owner in range(6):
            counts = scheme.copy_count(owner)
            start, _ = scheme.partition.range_of(owner)
            never_sent = scheme.context.unsent_indices(owner) - start
            if never_sent.size:
                assert np.all(counts[never_sent] == 3)


class TestOverheadAccounting:
    def test_round_overheads_within_bounds(self):
        a = poisson_2d(16)
        cluster, _, scheme = make_scheme(a, 8, 3)
        times = scheme.round_overhead_times(cluster.topology, cluster.machine)
        assert len(times) == 3
        lower, upper = scheme.overhead_bounds(cluster.topology, cluster.machine)
        total = scheme.per_iteration_overhead_time(cluster.topology, cluster.machine)
        assert lower - 1e-15 <= total <= upper + 1e-15

    def test_overhead_grows_with_phi(self):
        a = poisson_2d(16)
        cluster, _, s1 = make_scheme(a, 8, 1)
        _, _, s3 = make_scheme(a, 8, 3)
        t1 = s1.per_iteration_overhead_time(cluster.topology, cluster.machine)
        t3 = s3.per_iteration_overhead_time(cluster.topology, cluster.machine)
        assert t3 > t1

    def test_extra_traffic_counts(self):
        a = poisson_2d(16)
        _, _, scheme = make_scheme(a, 8, 2)
        messages, elements = scheme.extra_traffic_per_iteration()
        assert elements == scheme.total_extra_elements()
        assert messages >= 0

    def test_max_extra_per_round_bounded_by_block(self):
        a = poisson_2d(16)
        _, _, scheme = make_scheme(a, 8, 3)
        block = scheme.partition.max_block_size()
        assert all(m <= block for m in scheme.max_extra_per_round())

    def test_held_pattern_consistency(self):
        a = poisson_2d(12)
        _, _, scheme = make_scheme(a, 6, 2)
        pattern = scheme.held_pattern()
        for (owner, holder), idx in pattern.items():
            assert owner != holder
            owners = scheme.partition.owner_of(idx)
            assert np.all(owners == owner)

    def test_describe(self):
        a = poisson_2d(8)
        _, _, scheme = make_scheme(a, 4, 2)
        assert "phi=2" in scheme.describe()

    def test_held_pattern_memoized_and_isolated(self):
        """The pattern is computed once; callers get fresh dicts so key-level
        mutation cannot corrupt the scheme's internal state."""
        a = poisson_2d(12)
        _, _, scheme = make_scheme(a, 6, 2)
        first = scheme.held_pattern()
        second = scheme.held_pattern()
        assert first is not second
        assert sorted(first) == sorted(second)
        for key in first:
            assert first[key] is second[key]  # arrays are shared (immutable)
        first.clear()
        assert sorted(scheme.held_pattern()) == sorted(second)

    def test_copy_count_matches_pattern_recount(self):
        """The precomputed counts equal a from-scratch recount and returned
        arrays are private copies."""
        a = poisson_2d(12)
        _, _, scheme = make_scheme(a, 6, 3)
        pattern = scheme.held_pattern()
        for owner in range(6):
            start, _ = scheme.partition.range_of(owner)
            expected = np.zeros(scheme.partition.size_of(owner), dtype=np.int64)
            for (own, _holder), idx in pattern.items():
                if own == owner and idx.size:
                    expected[idx - start] += 1
            counts = scheme.copy_count(owner)
            assert np.array_equal(counts, expected)
            counts[:] = -1  # mutating the returned array must be harmless
            assert np.array_equal(scheme.copy_count(owner), expected)
