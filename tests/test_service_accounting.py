"""Cost attribution and service statistics.

The load-bearing contract is *exact* floating-point conservation:
:func:`exact_shares` / :func:`split_charges` must return shares whose
left-to-right ``sum()`` reproduces the batch total bit-for-bit (property
test below), so per-tenant ledgers reconcile exactly against the service
ledger.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    ServiceStats,
    TenantUsage,
    exact_shares,
    percentile,
    split_charges,
)
from repro.service.jobs import RequestResult


def make_result(request_id=0, tenant="t0", *, width=2, column=0,
                iterations=5, converged=True, simulated_time=1.0,
                charges=None, queue_wait=0.0, batch_wait=0.0, solve=0.0):
    return RequestResult(
        request_id=request_id, tenant=tenant, matrix_id="m", x=None,
        converged=converged, iterations=iterations,
        residual_norms=[1.0, 0.1], final_residual_norm=0.1,
        true_residual_norm=0.1, solver="pcg", batch_id=0, batch_width=width,
        batch_column=column, simulated_time=simulated_time,
        charges=charges if charges is not None else {"compute.spmv": 0.5},
        queue_wait_s=queue_wait, batch_wait_s=batch_wait, solve_s=solve)


# -- exact_shares --------------------------------------------------------------

class TestExactShares:
    def test_single_request_gets_everything(self):
        assert exact_shares(1.2345, [3.0]) == [1.2345]

    def test_zero_requests_raise(self):
        with pytest.raises(ValueError):
            exact_shares(1.0, [])

    def test_zero_total_splits_to_zeros(self):
        shares = exact_shares(0.0, [1.0, 2.0, 3.0])
        assert sum(shares) == 0.0

    def test_zero_weights_fall_back_to_equal(self):
        shares = exact_shares(3.0, [0.0, 0.0, 0.0])
        assert shares[0] == shares[1] == pytest.approx(1.0)
        total = 0.0
        for s in shares:
            total += s
        assert total == 3.0

    def test_proportionality_is_approximate(self):
        shares = exact_shares(10.0, [1.0, 3.0])
        assert shares[0] == pytest.approx(2.5)
        assert shares[1] == pytest.approx(7.5)

    @given(total=st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False),
           weights=st.lists(st.floats(min_value=0.0, max_value=1e4,
                                      allow_nan=False, allow_infinity=False),
                            min_size=1, max_size=16))
    @settings(max_examples=300, deadline=None)
    def test_left_to_right_sum_is_exact(self, total, weights):
        shares = exact_shares(total, weights)
        assert len(shares) == len(weights)
        acc = 0.0
        for share in shares:
            acc += share
        assert acc == total


# -- split_charges -------------------------------------------------------------

class TestSplitCharges:
    BREAKDOWN = {
        "compute.spmv": 0.37, "compute.vector": 0.11,
        "compute.precond": 0.23, "comm.halo": 0.05,
        "comm.allreduce": 0.41, "recovery.compute": 0.07,
    }

    def test_every_phase_conserved_exactly(self):
        weights = [6.0, 3.0, 11.0, 1.0]
        per_request = split_charges(self.BREAKDOWN, weights)
        assert len(per_request) == 4
        for phase, total in self.BREAKDOWN.items():
            acc = 0.0
            for request in per_request:
                acc += request[phase]
            assert acc == total

    def test_volume_phases_follow_weights(self):
        per_request = split_charges({"compute.spmv": 9.0}, [1.0, 2.0])
        assert per_request[0]["compute.spmv"] == pytest.approx(3.0)
        assert per_request[1]["compute.spmv"] == pytest.approx(6.0)

    def test_message_phases_amortized_equally(self):
        per_request = split_charges({"comm.allreduce": 9.0}, [1.0, 2.0])
        assert per_request[0]["comm.allreduce"] == \
            pytest.approx(per_request[1]["comm.allreduce"])

    def test_zero_requests_raise(self):
        with pytest.raises(ValueError):
            split_charges({"comm.halo": 1.0}, [])

    @given(breakdown=st.dictionaries(
        st.sampled_from(["compute.spmv", "compute.precond", "comm.halo",
                         "comm.allreduce", "checkpoint"]),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=1, max_size=5),
        weights=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                   allow_nan=False),
                         min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_property_per_phase_exact_conservation(self, breakdown, weights):
        per_request = split_charges(breakdown, weights)
        for phase, total in breakdown.items():
            acc = 0.0
            for request in per_request:
                acc += request[phase]
            assert acc == total


# -- percentile ----------------------------------------------------------------

class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 99.0) == 4.0
        assert percentile(values, 0.0) == 1.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


# -- ServiceStats --------------------------------------------------------------

class TestServiceStats:
    def make_stats(self):
        stats = ServiceStats()
        stats.record_batch(2)
        stats.record_request(make_result(0, "alice", width=2, column=0,
                                         simulated_time=0.6,
                                         charges={"compute.spmv": 0.4,
                                                  "comm.halo": 0.2},
                                         queue_wait=0.01, solve=0.05))
        stats.record_request(make_result(1, "bob", width=2, column=1,
                                         simulated_time=0.4,
                                         charges={"compute.spmv": 0.3,
                                                  "comm.halo": 0.1},
                                         queue_wait=0.02, solve=0.05))
        stats.record_batch(1)
        stats.record_request(make_result(2, "alice", width=1,
                                         simulated_time=0.5,
                                         charges={"compute.spmv": 0.5},
                                         queue_wait=0.03, solve=0.04))
        stats.record_failure()
        return stats

    def test_counters(self):
        stats = self.make_stats()
        assert stats.n_requests == 3
        assert stats.n_batches == 2
        assert stats.n_coalesced == 2
        assert stats.n_failed == 1
        assert stats.batch_widths == [2, 1]
        assert stats.mean_batch_width == pytest.approx(1.5)

    def test_tenant_ledgers_accumulate(self):
        stats = self.make_stats()
        alice = stats.tenants["alice"]
        assert alice.n_requests == 2
        assert alice.simulated_time == pytest.approx(1.1)
        assert alice.charges["compute.spmv"] == pytest.approx(0.9)
        assert stats.tenants["bob"].charges["comm.halo"] == pytest.approx(0.1)

    def test_aggregate_excludes_wallclock(self):
        aggregate = self.make_stats().aggregate()
        assert "latencies_s" not in aggregate
        assert not any("wait" in key for key in aggregate)
        assert aggregate["tenants"]["alice"]["n_requests"] == 2
        # Tenants are emitted in sorted order for byte-stable JSON.
        assert list(aggregate["tenants"]) == ["alice", "bob"]

    def test_latency_summary(self):
        summary = self.make_stats().latency_summary()
        assert summary["queue_wait_p50_s"] == 0.02
        assert summary["latency_p99_s"] == pytest.approx(0.07)

    def test_json_round_trip(self):
        stats = self.make_stats()
        payload = json.dumps(stats.to_dict())
        restored = ServiceStats.from_dict(json.loads(payload))
        assert restored.to_dict() == stats.to_dict()
        assert restored.aggregate() == stats.aggregate()

    def test_tenant_usage_round_trip(self):
        usage = TenantUsage("t", n_requests=2, n_converged=2, iterations=10,
                            simulated_time=1.5, charges={"comm.halo": 0.3})
        assert TenantUsage.from_dict(
            json.loads(json.dumps(usage.to_dict()))).to_dict() \
            == usage.to_dict()
