"""Tests for distributed multi-vectors (block BLAS-1, batched reductions).

The load-bearing contract: every block operation is per-column bit-identical
to the corresponding :class:`DistributedVector` operation, failure semantics
propagate identically, the batched reductions go through **one** allreduce
(message count independent of ``k``, volume scaling with ``k``), and the
ledger charge at ``k = 1`` equals the single-vector charge exactly.
"""

import math

import numpy as np
import pytest

from repro.cluster import MachineModel, NodeFailedError, VirtualCluster
from repro.cluster.cost_model import Phase
from repro.distributed import (
    BlockRowPartition,
    DistributedMultiVector,
    DistributedVector,
)

N_NODES = 4
N = 21  # uneven blocks: sizes (6, 5, 5, 5)
K = 3


def make_cluster():
    return VirtualCluster(N_NODES, machine=MachineModel(jitter_rel_std=0.0))


@pytest.fixture
def setup():
    cluster = make_cluster()
    partition = BlockRowPartition(N, N_NODES)
    return cluster, partition


def make_pair(cluster, partition, seed=0, k=K):
    """A multi-vector and its per-column DistributedVector twins."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal((N, k))
    mvec = DistributedMultiVector.from_global(cluster, partition, f"mv{seed}",
                                              values)
    columns = [
        DistributedVector.from_global(cluster, partition, f"v{seed}.{j}",
                                      values[:, j])
        for j in range(k)
    ]
    return mvec, columns, values


class TestConstructionAndViews:
    def test_from_global_roundtrip(self, setup):
        cluster, partition = setup
        mvec, _, values = make_pair(cluster, partition)
        assert np.array_equal(mvec.to_global(), values)

    def test_from_columns(self, setup):
        cluster, partition = setup
        _, columns, values = make_pair(cluster, partition)
        mvec = DistributedMultiVector.from_columns(cluster, partition, "mc",
                                                   columns)
        assert np.array_equal(mvec.to_global(), values)

    def test_column_gathers_single_column(self, setup):
        cluster, partition = setup
        mvec, _, values = make_pair(cluster, partition)
        for j in range(K):
            assert np.array_equal(mvec.column(j), values[:, j])

    def test_column_out_of_range(self, setup):
        cluster, partition = setup
        mvec, _, _ = make_pair(cluster, partition)
        with pytest.raises(IndexError):
            mvec.column(K)

    def test_column_raises_on_failed_node(self, setup):
        cluster, partition = setup
        mvec, _, _ = make_pair(cluster, partition)
        cluster.fail_nodes([1])
        with pytest.raises(NodeFailedError):
            mvec.column(0)

    def test_shared_bookkeeping_helpers(self, setup):
        cluster, partition = setup
        mvec, _, _ = make_pair(cluster, partition)
        assert mvec.available_ranks() == [0, 1, 2, 3]
        cluster.fail_nodes([2])
        assert mvec.available_ranks() == [0, 1, 3]
        assert mvec.lost_ranks() == [2]
        assert not mvec.has_block(2)
        mvec.delete()
        assert mvec.available_ranks() == []

    def test_to_global_allow_missing(self, setup):
        cluster, partition = setup
        mvec, _, values = make_pair(cluster, partition)
        cluster.fail_nodes([0])
        out = mvec.to_global(allow_missing=True, fill_value=0.0)
        assert np.allclose(out[partition.slice_of(0)], 0.0)
        start, stop = partition.range_of(1)
        assert np.array_equal(out[start:stop], values[start:stop])


class TestBlockOpEquivalence:
    """Each block op must be bit-identical per column to the vector op."""

    def assert_columns_identical(self, mvec, columns):
        for j, vec in enumerate(columns):
            assert np.array_equal(mvec.column(j), vec.to_global()), \
                f"column {j} diverged from the single-vector path"

    def test_copy(self, setup):
        cluster, partition = setup
        mvec, columns, _ = make_pair(cluster, partition)
        out = mvec.copy("mcopy")
        outs = [vec.copy(f"c{j}") for j, vec in enumerate(columns)]
        self.assert_columns_identical(out, outs)

    def test_fill(self, setup):
        cluster, partition = setup
        mvec, columns, _ = make_pair(cluster, partition)
        mvec.fill(2.5)
        for vec in columns:
            vec.fill(2.5)
        self.assert_columns_identical(mvec, columns)

    def test_scale_scalar_and_per_column(self, setup):
        cluster, partition = setup
        mvec, columns, _ = make_pair(cluster, partition)
        mvec.scale(0.37)
        for vec in columns:
            vec.scale(0.37)
        self.assert_columns_identical(mvec, columns)
        alphas = np.array([1.5, -0.25, 3.0])
        mvec.scale(alphas)
        for j, vec in enumerate(columns):
            vec.scale(float(alphas[j]))
        self.assert_columns_identical(mvec, columns)

    def test_axpy_per_column(self, setup):
        cluster, partition = setup
        mvec, columns, _ = make_pair(cluster, partition, seed=1)
        other, other_cols, _ = make_pair(cluster, partition, seed=2)
        alphas = np.array([0.1, -2.7, 1.0])
        mvec.axpy(alphas, other)
        for j, vec in enumerate(columns):
            vec.axpy(float(alphas[j]), other_cols[j])
        self.assert_columns_identical(mvec, columns)

    def test_aypx_per_column(self, setup):
        cluster, partition = setup
        mvec, columns, _ = make_pair(cluster, partition, seed=3)
        other, other_cols, _ = make_pair(cluster, partition, seed=4)
        alphas = np.array([-0.9, 0.0, 2.2])
        mvec.aypx(alphas, other)
        for j, vec in enumerate(columns):
            vec.aypx(float(alphas[j]), other_cols[j])
        self.assert_columns_identical(mvec, columns)

    def test_assign(self, setup):
        cluster, partition = setup
        mvec, columns, _ = make_pair(cluster, partition, seed=5)
        other, other_cols, _ = make_pair(cluster, partition, seed=6)
        mvec.assign(other)
        for j, vec in enumerate(columns):
            vec.assign(other_cols[j])
        self.assert_columns_identical(mvec, columns)

    def test_dots_bit_identical_to_column_dots(self, setup):
        cluster, partition = setup
        mvec, columns, _ = make_pair(cluster, partition, seed=7)
        other, other_cols, _ = make_pair(cluster, partition, seed=8)
        dots = mvec.dots(other)
        for j in range(K):
            assert dots[j] == columns[j].dot(other_cols[j])

    def test_norms2_bit_identical(self, setup):
        cluster, partition = setup
        mvec, columns, _ = make_pair(cluster, partition, seed=9)
        norms = mvec.norms2()
        for j, vec in enumerate(columns):
            assert norms[j] == vec.norm2()

    def test_norms2_propagates_nan_per_column(self, setup):
        cluster, partition = setup
        mvec, _, _ = make_pair(cluster, partition)
        mvec.get_block(1)[0, 1] = np.nan
        norms = mvec.norms2()
        assert not np.isnan(norms[0])
        assert np.isnan(norms[1])
        assert not np.isnan(norms[2])

    def test_gram(self, setup):
        cluster, partition = setup
        mvec, _, values = make_pair(cluster, partition, seed=10)
        other, _, other_values = make_pair(cluster, partition, seed=11)
        gram = mvec.gram(other)
        assert gram.shape == (K, K)
        assert np.allclose(gram, values.T @ other_values, rtol=1e-13)

    def test_coefficient_shape_validated(self, setup):
        cluster, partition = setup
        mvec, _, _ = make_pair(cluster, partition)
        with pytest.raises(ValueError):
            mvec.scale(np.ones(K + 1))

    def test_mismatched_columns_rejected(self, setup):
        cluster, partition = setup
        mvec, _, _ = make_pair(cluster, partition, k=K)
        other, _, _ = make_pair(cluster, partition, seed=12, k=K + 1)
        with pytest.raises(ValueError):
            mvec.dots(other)


class TestFailureSemantics:
    @pytest.mark.parametrize("op", [
        lambda m, o: m.copy("tmp"),
        lambda m, o: m.fill(1.0),
        lambda m, o: m.scale(2.0),
        lambda m, o: m.axpy(1.0, o),
        lambda m, o: m.aypx(1.0, o),
        lambda m, o: m.assign(o),
        lambda m, o: m.dots(o),
        lambda m, o: m.gram(o),
        lambda m, o: m.norms2(),
    ])
    def test_ops_raise_on_failed_node(self, setup, op):
        cluster, partition = setup
        mvec, _, _ = make_pair(cluster, partition, seed=13)
        other, _, _ = make_pair(cluster, partition, seed=14)
        cluster.fail_nodes([2])
        with pytest.raises(NodeFailedError):
            op(mvec, other)

    def test_dots_alive_only_skips_dead_ranks(self, setup):
        cluster, partition = setup
        mvec = DistributedMultiVector.from_global(
            cluster, partition, "m", np.ones((N, K)))
        cluster.fail_nodes([3])
        dots = mvec.dots(mvec, alive_only=True)
        # 16 surviving elements per column (ranks 0-2 own 6+5+5 rows).
        assert np.allclose(dots, 16.0)

    def test_dots_alive_only_charges_participating_max(self, setup):
        """Mirror of the DistributedVector.dot charge bugfix: the dead
        largest rank must not set the local-compute pace."""
        cluster, partition = setup
        mvec = DistributedMultiVector.from_global(
            cluster, partition, "m", np.ones((N, K)))
        cluster.fail_nodes([0])  # rank 0 owns the largest block (6 rows)
        before = cluster.ledger.times.get(Phase.VECTOR_COMPUTE, 0.0)
        mvec.dots(mvec, alive_only=True)
        delta = cluster.ledger.times[Phase.VECTOR_COMPUTE] - before
        model = cluster.ledger.model
        assert delta == pytest.approx(model.vector_op_time(5 * K, 2.0))


class TestBatchedReductionCharges:
    def allreduce_stats(self, cluster, fn):
        msgs0 = cluster.ledger.messages.get(Phase.ALLREDUCE_COMM, 0)
        elems0 = cluster.ledger.elements.get(Phase.ALLREDUCE_COMM, 0)
        time0 = cluster.ledger.times.get(Phase.ALLREDUCE_COMM, 0.0)
        fn()
        return (
            cluster.ledger.messages[Phase.ALLREDUCE_COMM] - msgs0,
            cluster.ledger.elements[Phase.ALLREDUCE_COMM] - elems0,
            cluster.ledger.times[Phase.ALLREDUCE_COMM] - time0,
        )

    def test_dots_is_one_allreduce(self, setup):
        """Message count independent of k; volume and time scale with k."""
        cluster, partition = setup
        levels = math.ceil(math.log2(N_NODES))
        expected_msgs = 2 * levels * N_NODES
        per_k = {}
        for k in (1, K):
            mvec, _, _ = make_pair(cluster, partition, seed=15, k=k)
            msgs, elems, time = self.allreduce_stats(
                cluster, lambda m=mvec: m.dots(m))
            per_k[k] = (msgs, elems, time)
        assert per_k[1][0] == per_k[K][0] == expected_msgs
        assert per_k[K][1] == K * per_k[1][1]
        model = cluster.ledger.model
        assert per_k[K][2] == pytest.approx(model.allreduce_time(N_NODES, K))

    def test_gram_ships_k_squared_volume(self, setup):
        cluster, partition = setup
        levels = math.ceil(math.log2(N_NODES))
        mvec, _, _ = make_pair(cluster, partition, seed=16)
        msgs, elems, time = self.allreduce_stats(
            cluster, lambda: mvec.gram(mvec))
        assert msgs == 2 * levels * N_NODES
        assert elems == 2 * levels * N_NODES * K * K
        model = cluster.ledger.model
        assert time == pytest.approx(model.allreduce_time(N_NODES, K * K))


class TestChargeEqualityAtK1:
    """At k = 1 every block op must charge exactly the single-vector cost."""

    OPS = {
        "copy": (lambda m, o: m.copy("mc"), lambda v, w: v.copy("vc")),
        "fill": (lambda m, o: m.fill(0.5), lambda v, w: v.fill(0.5)),
        "scale": (lambda m, o: m.scale(1.5), lambda v, w: v.scale(1.5)),
        "axpy": (lambda m, o: m.axpy(2.0, o), lambda v, w: v.axpy(2.0, w)),
        "aypx": (lambda m, o: m.aypx(2.0, o), lambda v, w: v.aypx(2.0, w)),
        "assign": (lambda m, o: m.assign(o), lambda v, w: v.assign(w)),
        "dots": (lambda m, o: m.dots(o), lambda v, w: v.dot(w)),
        "norms2": (lambda m, o: m.norms2(), lambda v, w: v.norm2()),
    }

    @pytest.mark.parametrize("name", sorted(OPS))
    def test_k1_charges_match(self, name):
        block_op, vector_op = self.OPS[name]
        partition = BlockRowPartition(N, N_NODES)
        rng = np.random.default_rng(17)
        values = rng.standard_normal(N)
        other_values = rng.standard_normal(N)

        cluster_m = make_cluster()
        mvec = DistributedMultiVector.from_global(
            cluster_m, partition, "m", values[:, None])
        other_m = DistributedMultiVector.from_global(
            cluster_m, partition, "o", other_values[:, None])
        block_op(mvec, other_m)

        cluster_v = make_cluster()
        vec = DistributedVector.from_global(cluster_v, partition, "v", values)
        other_v = DistributedVector.from_global(cluster_v, partition, "w",
                                                other_values)
        vector_op(vec, other_v)

        assert cluster_m.ledger.times == cluster_v.ledger.times
        assert cluster_m.ledger.messages == cluster_v.ledger.messages
        assert cluster_m.ledger.elements == cluster_v.ledger.elements
