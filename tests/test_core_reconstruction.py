"""Tests for the ESR reconstruction (Alg. 2 and its multi-failure extension).

The central property: after psi <= phi simultaneous node failures, the
reconstructed state (x, r, z, p) matches the pre-failure state to (near)
machine precision, for every preconditioner form the paper discusses.
"""

import pytest

from repro.cluster import FailureEvent, FailureInjector, MachineModel
from repro.core.api import distribute_problem
from repro.core.metrics import state_difference
from repro.core.resilient_pcg import ResilientPCG
from repro.core.redundancy import BackupPlacement
from repro.matrices import poisson_2d, graph_laplacian_spd, elasticity_3d
from repro.precond import make_preconditioner
from repro.precond.base import PreconditionerForm


def run_with_state_check(matrix, *, n_nodes, phi, failed_ranks, failure_iteration,
                         preconditioner="block_jacobi", placement=BackupPlacement.PAPER,
                         reconstruction_form=None, local_solver="pcg_ilu"):
    """Run ResilientPCG and capture the state right before/after recovery."""
    problem = distribute_problem(matrix, n_nodes=n_nodes, seed=0,
                                 machine=MachineModel(jitter_rel_std=0.0))
    precond = make_preconditioner(preconditioner)
    precond.setup(problem.matrix.to_global(), problem.partition)
    injector = FailureInjector([FailureEvent(failure_iteration, tuple(failed_ranks))])
    solver = ResilientPCG(problem.matrix, problem.rhs, precond, phi=phi,
                          placement=placement, failure_injector=injector,
                          local_solver_method=local_solver,
                          reconstruction_form=reconstruction_form,
                          context=problem.context)
    captured = {}
    original = solver._handle_failures

    def patched(iteration):
        due = solver.failure_injector.events_due(iteration) if \
            solver.failure_injector else []
        if due:
            captured["before"] = {
                "x": solver.x.to_global(), "r": solver.r.to_global(),
                "z": solver.z.to_global(), "p": solver.p.to_global(),
            }
            handled = original(iteration)
            captured["after"] = {
                "x": solver.x.to_global(), "r": solver.r.to_global(),
                "z": solver.z.to_global(), "p": solver.p.to_global(),
            }
            return handled
        return original(iteration)

    solver._handle_failures = patched
    result = solver.solve()
    return result, captured, solver


class TestExactReconstruction:
    @pytest.mark.parametrize("failed_ranks", [[2], [2, 3], [1, 3, 5]])
    def test_block_jacobi_forward_form(self, failed_ranks):
        result, captured, _ = run_with_state_check(
            poisson_2d(18), n_nodes=6, phi=3, failed_ranks=failed_ranks,
            failure_iteration=8,
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-9 for v in diffs.values()), diffs
        assert result.converged
        assert abs(result.relative_residual_deviation) < 1e-5

    def test_jacobi_inverse_form(self):
        result, captured, _ = run_with_state_check(
            poisson_2d(18), n_nodes=6, phi=2, failed_ranks=[0, 1],
            failure_iteration=10, preconditioner="jacobi",
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-9 for v in diffs.values()), diffs
        assert result.converged

    def test_identity_form(self):
        result, captured, _ = run_with_state_check(
            poisson_2d(18), n_nodes=6, phi=2, failed_ranks=[4, 5],
            failure_iteration=12, preconditioner="identity",
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-9 for v in diffs.values()), diffs
        assert result.converged

    def test_block_jacobi_inverse_form_explicitly(self):
        # Force the Alg.-2 (P given) reconstruction path with block Jacobi.
        result, captured, _ = run_with_state_check(
            poisson_2d(16), n_nodes=4, phi=2, failed_ranks=[1, 2],
            failure_iteration=6, preconditioner="block_jacobi",
            reconstruction_form=PreconditionerForm.INVERSE,
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-8 for v in diffs.values()), diffs
        assert result.converged

    def test_direct_local_solver(self):
        result, captured, _ = run_with_state_check(
            poisson_2d(16), n_nodes=4, phi=1, failed_ranks=[3],
            failure_iteration=5, local_solver="direct",
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-11 for v in diffs.values()), diffs

    def test_failure_at_iteration_zero(self):
        result, captured, _ = run_with_state_check(
            poisson_2d(16), n_nodes=4, phi=1, failed_ranks=[2],
            failure_iteration=0,
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-9 for v in diffs.values()), diffs
        assert result.converged

    def test_irregular_matrix_multiple_failures(self):
        result, captured, _ = run_with_state_check(
            graph_laplacian_spd(240, avg_degree=5, seed=3), n_nodes=8, phi=3,
            failed_ranks=[3, 4, 5], failure_iteration=15,
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-8 for v in diffs.values()), diffs
        assert result.converged

    def test_wide_band_matrix(self):
        result, captured, _ = run_with_state_check(
            elasticity_3d(4, 4, 4, dofs_per_node=3, seed=1), n_nodes=6, phi=3,
            failed_ranks=[0, 1, 2], failure_iteration=4,
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-9 for v in diffs.values()), diffs

    def test_next_ranks_placement(self):
        result, captured, _ = run_with_state_check(
            poisson_2d(16), n_nodes=4, phi=2, failed_ranks=[1, 2],
            failure_iteration=7, placement=BackupPlacement.NEXT_RANKS,
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-9 for v in diffs.values()), diffs

    def test_random_placement(self):
        result, captured, _ = run_with_state_check(
            poisson_2d(16), n_nodes=8, phi=3, failed_ranks=[2, 3, 4],
            failure_iteration=7, placement=BackupPlacement.RANDOM,
        )
        diffs = state_difference(captured["before"], captured["after"])
        assert all(v < 1e-9 for v in diffs.values()), diffs


class TestReconstructionFormSelection:
    def _reconstructor(self, preconditioner, requested_form=None):
        from repro.core.esr import ESRProtocol
        from repro.core.reconstruction import ESRReconstructor

        problem = distribute_problem(poisson_2d(12), n_nodes=4, seed=0,
                                     machine=MachineModel(jitter_rel_std=0.0))
        precond = make_preconditioner(preconditioner)
        precond.setup(problem.matrix.to_global(), problem.partition)
        esr = ESRProtocol(problem.cluster, problem.context, 1)
        reconstructor = ESRReconstructor(
            problem.cluster, problem.matrix, problem.rhs, precond,
            problem.context, esr, reconstruction_form=requested_form,
        )
        return reconstructor, precond

    def test_split_form_reduces_to_forward(self):
        """A preconditioner that only exposes a split factor (M = L L^T) is
        reconstructed through the forward variant."""
        reconstructor, precond = self._reconstructor("split_ic0")
        assert precond.form is PreconditionerForm.SPLIT
        assert reconstructor.reconstruction_form() is PreconditionerForm.FORWARD

    def test_explicitly_requested_form_is_honoured(self):
        reconstructor, _ = self._reconstructor(
            "split_ic0", requested_form=PreconditionerForm.SPLIT
        )
        assert reconstructor.reconstruction_form() is PreconditionerForm.SPLIT

    def test_natural_forms_pass_through(self):
        for name, expected in (("block_jacobi", PreconditionerForm.FORWARD),
                               ("jacobi", PreconditionerForm.INVERSE),
                               ("identity", PreconditionerForm.IDENTITY)):
            reconstructor, _ = self._reconstructor(name)
            assert reconstructor.reconstruction_form() is expected


class TestRecoveryReports:
    def test_report_contents(self):
        result, _, solver = run_with_state_check(
            poisson_2d(18), n_nodes=6, phi=3, failed_ranks=[1, 2, 3],
            failure_iteration=9,
        )
        assert len(result.recoveries) == 1
        report = result.recoveries[0]
        assert sorted(report.failed_ranks) == [1, 2, 3]
        assert report.iteration == 9
        assert report.restarts == 0
        assert report.simulated_time > 0
        assert report.reconstruction_form == "forward"
        assert len(report.local_solve_stats) >= 1

    def test_replacement_nodes_installed(self):
        _, _, solver = run_with_state_check(
            poisson_2d(18), n_nodes=6, phi=2, failed_ranks=[2, 4],
            failure_iteration=6,
        )
        assert solver.cluster.failed_ranks() == []
        from repro.cluster import NodeStatus
        assert solver.cluster.node(2).status is NodeStatus.REPLACEMENT
        assert solver.cluster.node(4).status is NodeStatus.REPLACEMENT

    def test_recovery_time_charged(self):
        result, _, _ = run_with_state_check(
            poisson_2d(18), n_nodes=6, phi=1, failed_ranks=[3],
            failure_iteration=5,
        )
        assert result.simulated_recovery_time > 0
        assert result.simulated_time > result.simulated_iteration_time
