"""Tests for the block-row partition."""

import numpy as np
import pytest

from repro.distributed.partition import BlockRowPartition


class TestConstruction:
    def test_even_split(self):
        part = BlockRowPartition(100, 4)
        assert list(part.sizes()) == [25, 25, 25, 25]

    def test_uneven_split_front_loaded(self):
        part = BlockRowPartition(10, 3)
        assert list(part.sizes()) == [4, 3, 3]

    def test_offsets_consistent(self):
        part = BlockRowPartition(17, 5)
        offsets = part.offsets
        assert offsets[0] == 0
        assert offsets[-1] == 17
        assert np.all(np.diff(offsets) >= 1)

    def test_single_part(self):
        part = BlockRowPartition(7, 1)
        assert part.size_of(0) == 7

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            BlockRowPartition(3, 4)

    @pytest.mark.parametrize("n, parts", [(0, 1), (5, 0), (-1, 2)])
    def test_invalid_sizes_rejected(self, n, parts):
        with pytest.raises(ValueError):
            BlockRowPartition(n, parts)

    def test_max_block_size_is_ceil(self):
        assert BlockRowPartition(10, 3).max_block_size() == 4
        assert BlockRowPartition(12, 3).max_block_size() == 4


class TestIndexSets:
    def test_range_and_indices(self):
        part = BlockRowPartition(10, 3)
        assert part.range_of(0) == (0, 4)
        assert part.range_of(2) == (7, 10)
        assert np.array_equal(part.indices_of(1), [4, 5, 6])

    def test_slice(self):
        part = BlockRowPartition(10, 2)
        assert part.slice_of(1) == slice(5, 10)

    def test_union_of_sets(self):
        part = BlockRowPartition(12, 4)
        union = part.indices_of_set([1, 3])
        assert np.array_equal(union, [3, 4, 5, 9, 10, 11])

    def test_union_empty(self):
        part = BlockRowPartition(12, 4)
        assert part.indices_of_set([]).size == 0

    def test_indices_cover_everything_exactly_once(self):
        part = BlockRowPartition(101, 7)
        all_indices = np.concatenate([part.indices_of(r) for r in part])
        assert np.array_equal(np.sort(all_indices), np.arange(101))

    def test_invalid_rank_rejected(self):
        part = BlockRowPartition(10, 2)
        with pytest.raises(ValueError):
            part.range_of(2)


class TestOwnership:
    def test_owner_of_vector(self):
        part = BlockRowPartition(10, 3)  # sizes 4,3,3
        owners = part.owner_of(np.array([0, 3, 4, 6, 7, 9]))
        assert list(owners) == [0, 0, 1, 1, 2, 2]

    def test_owner_of_scalar(self):
        part = BlockRowPartition(10, 3)
        assert part.owner_of_scalar(0) == 0
        assert part.owner_of_scalar(9) == 2

    def test_owner_out_of_range(self):
        part = BlockRowPartition(10, 2)
        with pytest.raises(IndexError):
            part.owner_of(np.array([10]))

    def test_ownership_matches_index_sets(self):
        part = BlockRowPartition(37, 5)
        for rank in part:
            owners = part.owner_of(part.indices_of(rank))
            assert np.all(owners == rank)

    def test_local_index(self):
        part = BlockRowPartition(10, 2)
        local = part.local_index(1, np.array([5, 7, 9]))
        assert np.array_equal(local, [0, 2, 4])

    def test_local_index_wrong_owner_rejected(self):
        part = BlockRowPartition(10, 2)
        with pytest.raises(IndexError):
            part.local_index(0, np.array([9]))


class TestMisc:
    def test_blocks_listing(self):
        part = BlockRowPartition(9, 3)
        assert part.blocks() == [(0, 0, 3), (1, 3, 6), (2, 6, 9)]

    def test_compatibility(self):
        assert BlockRowPartition(10, 2).is_compatible_with(BlockRowPartition(10, 2))
        assert not BlockRowPartition(10, 2).is_compatible_with(BlockRowPartition(10, 5))

    def test_iteration(self):
        assert list(BlockRowPartition(10, 4)) == [0, 1, 2, 3]
