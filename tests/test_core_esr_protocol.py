"""Tests for the ESR protocol (redundant storage and block recovery)."""

import numpy as np
import pytest

from repro.cluster import MachineModel, Phase, UnrecoverableStateError, VirtualCluster
from repro.core.esr import ESRProtocol
from repro.core.redundancy import BackupPlacement
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedVector,
)
from repro.matrices import poisson_2d


@pytest.fixture
def setup():
    cluster = VirtualCluster(6, machine=MachineModel(jitter_rel_std=0.0))
    a = poisson_2d(12)  # n = 144
    partition = BlockRowPartition(144, 6)
    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    context = CommunicationContext.from_matrix(dist)
    return cluster, partition, dist, context


def make_p(cluster, partition, iteration):
    values = np.arange(partition.n, dtype=float) + 1000.0 * iteration
    return DistributedVector.from_global(cluster, partition, f"p{iteration}", values)


class TestStorage:
    def test_after_spmv_charges_redundancy(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        p = make_p(cluster, partition, 0)
        esr.after_spmv(p, 0)
        assert cluster.ledger.total_time([Phase.REDUNDANCY_COMM]) > 0

    def test_phi_zero_charges_nothing(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=0)
        esr.after_spmv(make_p(cluster, partition, 0), 0)
        assert cluster.ledger.total_time([Phase.REDUNDANCY_COMM]) == 0.0

    def test_two_generations_retained(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        for j in range(4):
            esr.after_spmv(make_p(cluster, partition, j), j)
        assert esr.available_generations() == [2, 3]

    def test_scalar_replication(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        esr.store_replicated_scalars(5, beta=0.25)
        assert esr.recover_replicated_scalar("beta", charge=False) == 0.25

    def test_scalar_survives_failures(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        esr.store_replicated_scalars(5, beta=0.75)
        cluster.fail_nodes([0, 1, 2])
        assert esr.recover_replicated_scalar("beta") == 0.75

    def test_missing_scalar_raises(self, setup):
        cluster, _, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        with pytest.raises(UnrecoverableStateError):
            esr.recover_replicated_scalar("beta")

    def test_mismatched_scheme_rejected(self, setup):
        cluster, _, _, context = setup
        from repro.core.redundancy import RedundancyScheme
        scheme = RedundancyScheme(context, 1)
        with pytest.raises(ValueError):
            ESRProtocol(cluster, context, phi=2, scheme=scheme)


class TestRecovery:
    @pytest.mark.parametrize("phi,failed", [
        (1, [2]),
        (2, [2, 3]),
        (3, [0, 1, 2]),
        (3, [1, 3, 5]),
    ])
    def test_recover_blocks_after_failures(self, setup, phi, failed):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=phi)
        p_prev = make_p(cluster, partition, 6)
        p_cur = make_p(cluster, partition, 7)
        esr.after_spmv(p_prev, 6)
        esr.after_spmv(p_cur, 7)
        expected_prev = p_prev.to_global()
        expected_cur = p_cur.to_global()
        cluster.fail_nodes(failed)
        for rank in failed:
            start, stop = partition.range_of(rank)
            rec_cur = esr.recover_block(rank, 7)
            rec_prev = esr.recover_block(rank, 6)
            assert np.array_equal(rec_cur, expected_cur[start:stop])
            assert np.array_equal(rec_prev, expected_prev[start:stop])

    def test_recovery_charges_communication(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        esr.after_spmv(make_p(cluster, partition, 0), 0)
        cluster.fail_nodes([3])
        esr.recover_block(3, 0)
        assert cluster.ledger.total_time([Phase.RECOVERY_COMM]) > 0

    def test_unretained_generation_rejected(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        for j in range(3):
            esr.after_spmv(make_p(cluster, partition, j), j)
        cluster.fail_nodes([1])
        with pytest.raises(UnrecoverableStateError):
            esr.recover_block(1, 0)  # generation 0 was dropped

    def test_too_many_failures_unrecoverable(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        esr.after_spmv(make_p(cluster, partition, 0), 0)
        # phi = 1 cannot tolerate the loss of three adjacent nodes: some
        # elements only had copies on the failed neighbours.
        cluster.fail_nodes([1, 2, 3])
        with pytest.raises(UnrecoverableStateError):
            esr.recover_block(2, 0)

    def test_holders_listing(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        esr.after_spmv(make_p(cluster, partition, 0), 0)
        holders = esr.holders_with_copies(2, 0)
        assert len(holders) >= 2
        assert 2 not in holders
        cluster.fail_nodes([holders[0]])
        assert holders[0] not in esr.holders_with_copies(2, 0)

    def test_failed_holder_does_not_store(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        p = make_p(cluster, partition, 0)
        cluster.fail_nodes([0])
        # Storing with a failed holder present must not raise.
        esr.after_spmv(p, 0)
        assert 0 not in esr.holders_with_copies(1, 0)


class TestOverheadSummary:
    def test_summary_fields(self, setup):
        cluster, _, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        summary = esr.overhead_summary()
        assert summary["phi"] == 2.0
        assert summary["lower_bound"] <= summary["per_iteration_time"] + 1e-15
        assert summary["per_iteration_time"] <= summary["upper_bound"] + 1e-15

    def test_overhead_time_matches_property(self, setup):
        cluster, _, _, context = setup
        esr = ESRProtocol(cluster, context, phi=3)
        assert esr.per_iteration_overhead_time == pytest.approx(
            esr.overhead_summary()["per_iteration_time"]
        )
