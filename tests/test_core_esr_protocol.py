"""Tests for the ESR protocol (redundant storage and block recovery)."""

import numpy as np
import pytest

from repro.cluster import MachineModel, Phase, UnrecoverableStateError, VirtualCluster
from repro.core.esr import _ESR_KEY, ESRProtocol
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedVector,
    distributed_spmv,
)
from repro.matrices import poisson_2d


@pytest.fixture
def setup():
    cluster = VirtualCluster(6, machine=MachineModel(jitter_rel_std=0.0))
    a = poisson_2d(12)  # n = 144
    partition = BlockRowPartition(144, 6)
    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    context = CommunicationContext.from_matrix(dist)
    return cluster, partition, dist, context


def make_p(cluster, partition, iteration):
    values = np.arange(partition.n, dtype=float) + 1000.0 * iteration
    return DistributedVector.from_global(cluster, partition, f"p{iteration}", values)


class TestStorage:
    def test_after_spmv_charges_redundancy(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        p = make_p(cluster, partition, 0)
        esr.after_spmv(p, 0)
        assert cluster.ledger.total_time([Phase.REDUNDANCY_COMM]) > 0

    def test_phi_zero_charges_nothing(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=0)
        esr.after_spmv(make_p(cluster, partition, 0), 0)
        assert cluster.ledger.total_time([Phase.REDUNDANCY_COMM]) == 0.0

    def test_two_generations_retained(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        for j in range(4):
            esr.after_spmv(make_p(cluster, partition, j), j)
        assert esr.available_generations() == [2, 3]

    def test_scalar_replication(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        esr.store_replicated_scalars(5, beta=0.25)
        assert esr.recover_replicated_scalar("beta", charge=False) == 0.25

    def test_scalar_survives_failures(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        esr.store_replicated_scalars(5, beta=0.75)
        cluster.fail_nodes([0, 1, 2])
        assert esr.recover_replicated_scalar("beta") == 0.75

    def test_missing_scalar_raises(self, setup):
        cluster, _, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        with pytest.raises(UnrecoverableStateError):
            esr.recover_replicated_scalar("beta")

    def test_mismatched_scheme_rejected(self, setup):
        cluster, _, _, context = setup
        from repro.core.redundancy import RedundancyScheme
        scheme = RedundancyScheme(context, 1)
        with pytest.raises(ValueError):
            ESRProtocol(cluster, context, phi=2, scheme=scheme)


class TestRecovery:
    @pytest.mark.parametrize("phi,failed", [
        (1, [2]),
        (2, [2, 3]),
        (3, [0, 1, 2]),
        (3, [1, 3, 5]),
    ])
    def test_recover_blocks_after_failures(self, setup, phi, failed):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=phi)
        p_prev = make_p(cluster, partition, 6)
        p_cur = make_p(cluster, partition, 7)
        esr.after_spmv(p_prev, 6)
        esr.after_spmv(p_cur, 7)
        expected_prev = p_prev.to_global()
        expected_cur = p_cur.to_global()
        cluster.fail_nodes(failed)
        for rank in failed:
            start, stop = partition.range_of(rank)
            rec_cur = esr.recover_block(rank, 7)
            rec_prev = esr.recover_block(rank, 6)
            assert np.array_equal(rec_cur, expected_cur[start:stop])
            assert np.array_equal(rec_prev, expected_prev[start:stop])

    def test_recovery_charges_communication(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        esr.after_spmv(make_p(cluster, partition, 0), 0)
        cluster.fail_nodes([3])
        esr.recover_block(3, 0)
        assert cluster.ledger.total_time([Phase.RECOVERY_COMM]) > 0

    def test_unretained_generation_rejected(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        for j in range(3):
            esr.after_spmv(make_p(cluster, partition, j), j)
        cluster.fail_nodes([1])
        with pytest.raises(UnrecoverableStateError):
            esr.recover_block(1, 0)  # generation 0 was dropped

    def test_too_many_failures_unrecoverable(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=1)
        esr.after_spmv(make_p(cluster, partition, 0), 0)
        # phi = 1 cannot tolerate the loss of three adjacent nodes: some
        # elements only had copies on the failed neighbours.
        cluster.fail_nodes([1, 2, 3])
        with pytest.raises(UnrecoverableStateError):
            esr.recover_block(2, 0)

    def test_holders_listing(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        esr.after_spmv(make_p(cluster, partition, 0), 0)
        holders = esr.holders_with_copies(2, 0)
        assert len(holders) >= 2
        assert 2 not in holders
        cluster.fail_nodes([holders[0]])
        assert holders[0] not in esr.holders_with_copies(2, 0)

    def test_failed_holder_does_not_store(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        p = make_p(cluster, partition, 0)
        cluster.fail_nodes([0])
        # Storing with a failed holder present must not raise.
        esr.after_spmv(p, 0)
        assert 0 not in esr.holders_with_copies(1, 0)


def legacy_stores(esr, p, slot):
    """Reference implementation of the former per-(owner, holder) loop."""
    from repro.cluster.errors import NodeFailedError

    stores = {}
    for (owner, holder), local_idx in esr._pattern_local.items():
        if not esr.cluster.node(holder).is_alive:
            continue
        try:
            values = p.get_block(owner)[local_idx]
        except NodeFailedError:
            continue
        stores[(holder, (_ESR_KEY, slot, owner))] = values.copy()
    return stores


def stored_snapshot(esr, slot):
    """All ESR stores of *slot* currently present on alive nodes."""
    out = {}
    for (owner, holder) in esr._pattern_local:
        node = esr.cluster.node(holder)
        if not node.is_alive:
            continue
        key = (_ESR_KEY, slot, owner)
        if key in node.memory:
            out[(holder, key)] = node.memory[key]
    return out


class TestFusedStaging:
    """The fused (pool-based) staging must be byte-identical to the former
    per-(owner, holder) gather loop, with and without an engine pool to
    reuse, and under node failures mid-iteration."""

    def assert_stores_equal(self, actual, expected):
        assert sorted(actual) == sorted(expected)
        for key in expected:
            assert actual[key].tobytes() == expected[key].tobytes()

    def test_byte_identical_without_engine(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        p = make_p(cluster, partition, 3)
        expected = legacy_stores(esr, p, slot=1)
        esr.after_spmv(p, 3)
        self.assert_stores_equal(stored_snapshot(esr, 1), expected)

    def test_byte_identical_with_engine_pool_reuse(self, setup):
        cluster, partition, dist, context = setup
        esr = ESRProtocol(cluster, context, phi=2, matrix=dist)
        p = make_p(cluster, partition, 4)
        ap = DistributedVector.zeros(cluster, partition, "ap")
        distributed_spmv(dist, p, ap, context)  # stages the engine pool
        engine = dist.cached_spmv_engine(context)
        assert engine is not None and engine.pool_staged_from(p)
        expected = legacy_stores(esr, p, slot=0)
        esr.after_spmv(p, 4)
        self.assert_stores_equal(stored_snapshot(esr, 0), expected)

    def test_stale_engine_pool_is_not_reused(self, setup):
        """A pool staged from a different vector must be ignored (the
        self-staged values are used instead)."""
        cluster, partition, dist, context = setup
        esr = ESRProtocol(cluster, context, phi=1, matrix=dist)
        other = make_p(cluster, partition, 9)
        ap = DistributedVector.zeros(cluster, partition, "ap")
        distributed_spmv(dist, other, ap, context)
        p = make_p(cluster, partition, 5)
        engine = dist.cached_spmv_engine(context)
        assert engine is not None and not engine.pool_staged_from(p)
        expected = legacy_stores(esr, p, slot=1)
        esr.after_spmv(p, 5)
        self.assert_stores_equal(stored_snapshot(esr, 1), expected)

    def test_failed_owner_mid_iteration(self, setup):
        """Stores of a failed owner are skipped; the surviving owners'
        copies still match the legacy loop byte for byte."""
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        p0 = make_p(cluster, partition, 0)
        esr.after_spmv(p0, 0)
        baseline = stored_snapshot(esr, 0)
        p2 = make_p(cluster, partition, 2)  # same parity slot as iteration 0
        cluster.fail_nodes([2])
        expected = legacy_stores(esr, p2, slot=0)
        esr.after_spmv(p2, 2)
        actual = stored_snapshot(esr, 0)
        # Fresh stores byte-identical to the legacy loop ...
        for key in expected:
            assert actual[key].tobytes() == expected[key].tobytes()
        # ... and pairs owned by the failed rank keep the previous slot
        # content on surviving holders (legacy semantics: skip, not delete).
        for (holder, key), values in baseline.items():
            if key[2] == 2 and cluster.node(holder).is_alive:
                assert actual[(holder, key)].tobytes() == values.tobytes()

    def test_failed_holder_stores_nothing_fused(self, setup):
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        p = make_p(cluster, partition, 0)
        cluster.fail_nodes([1])
        expected = legacy_stores(esr, p, slot=0)
        esr.after_spmv(p, 0)
        self.assert_stores_equal(stored_snapshot(esr, 0), expected)
        assert all(holder != 1 for holder, _key in stored_snapshot(esr, 0))

    def test_staging_extras_cover_unsent_elements(self, setup):
        """Pattern elements no SpMV message carries (e.g. Chen-style unsent
        extras) must land in the extras section and still be recoverable."""
        cluster, partition, _, context = setup
        esr = ESRProtocol(cluster, context, phi=3)
        staging = esr._staging
        # The staging buffer covers the pool plus every non-pool element.
        total_pattern = sum(
            idx.size for idx in esr._pattern_local.values()
        )
        assert staging.pool_size + staging.extras_size <= \
            staging.pool_size + total_pattern
        p = make_p(cluster, partition, 1)
        esr.after_spmv(p, 1)
        expected = p.to_global()
        cluster.fail_nodes([0])
        rec = esr.recover_block(0, 1)
        start, stop = partition.range_of(0)
        assert np.array_equal(rec, expected[start:stop])


def make_block(cluster, partition, iteration, k=3):
    values = (np.arange(partition.n * k, dtype=float).reshape(partition.n, k)
              + 1000.0 * iteration)
    from repro.distributed import DistributedMultiVector

    return DistributedMultiVector.from_global(cluster, partition,
                                              f"P{iteration}", values)


def legacy_block_stores(esr, p, slot):
    """Reference per-(owner, holder) gather loop for ``(n_i, k)`` blocks."""
    from repro.cluster.errors import NodeFailedError

    stores = {}
    for (owner, holder), local_idx in esr._pattern_local.items():
        if not esr.cluster.node(holder).is_alive:
            continue
        try:
            values = p.get_block(owner)[local_idx]
        except NodeFailedError:
            continue
        stores[(holder, (_ESR_KEY, slot, owner))] = values.copy()
    return stores


class TestBlockStaging:
    """Block (multi-RHS) redundant stores: byte-identical to the per-pair
    gather loop, per-column identical to single-vector stores, engine block
    pool reused, and the per-pair fallback under mid-iteration owner
    failures pulling whole (rows, k) slices from the staged block buffer."""

    def make_esr(self, cluster, context, phi=2, k=3, matrix=None):
        return ESRProtocol(cluster, context, phi=phi, matrix=matrix, n_cols=k)

    def assert_stores_equal(self, actual, expected):
        assert sorted(actual) == sorted(expected)
        for key in expected:
            assert actual[key].tobytes() == expected[key].tobytes()

    def test_byte_identical_without_engine(self, setup):
        cluster, partition, _, context = setup
        esr = self.make_esr(cluster, context)
        p = make_block(cluster, partition, 3)
        expected = legacy_block_stores(esr, p, slot=1)
        esr.after_spmv(p, 3)
        self.assert_stores_equal(stored_snapshot(esr, 1), expected)

    def test_per_column_identical_to_single_vector_protocol(self, setup):
        """Column j of every block store equals what a single-vector
        protocol stores for column j alone."""
        cluster, partition, _, context = setup
        k = 3
        esr = self.make_esr(cluster, context, k=k)
        p = make_block(cluster, partition, 0, k=k)
        esr.after_spmv(p, 0)
        block_stores = stored_snapshot(esr, 0)
        for j in range(k):
            vec_esr = ESRProtocol(cluster, context, phi=2)
            pj = DistributedVector.from_global(
                cluster, partition, f"col{j}", p.to_global()[:, j])
            vec_esr.after_spmv(pj, 0)
            vec_stores = stored_snapshot(vec_esr, 0)
            assert sorted(vec_stores) == sorted(block_stores)
            for key, values in vec_stores.items():
                assert np.array_equal(block_stores[key][:, j], values)

    def test_engine_block_pool_reused_byte_identical(self, setup):
        cluster, partition, dist, context = setup
        from repro.distributed import (
            DistributedMultiVector,
            distributed_spmv_block,
        )

        esr = self.make_esr(cluster, context, matrix=dist)
        p = make_block(cluster, partition, 4)
        ap = DistributedMultiVector.zeros(cluster, partition, "AP", p.n_cols)
        distributed_spmv_block(dist, p, ap, context)  # stages the block pool
        engine = dist.cached_spmv_engine(context)
        assert engine is not None and engine.block_pool_staged_from(p)
        assert engine.block_send_pool(p.n_cols) is not None
        expected = legacy_block_stores(esr, p, slot=0)
        esr.after_spmv(p, 4)
        self.assert_stores_equal(stored_snapshot(esr, 0), expected)

    def test_stale_block_pool_not_reused(self, setup):
        cluster, partition, dist, context = setup
        from repro.distributed import (
            DistributedMultiVector,
            distributed_spmv_block,
        )

        esr = self.make_esr(cluster, context, matrix=dist)
        other = make_block(cluster, partition, 9)
        ap = DistributedMultiVector.zeros(cluster, partition, "AP",
                                          other.n_cols)
        distributed_spmv_block(dist, other, ap, context)
        p = make_block(cluster, partition, 5)
        engine = dist.cached_spmv_engine(context)
        assert engine is not None and not engine.block_pool_staged_from(p)
        expected = legacy_block_stores(esr, p, slot=1)
        esr.after_spmv(p, 5)
        self.assert_stores_equal(stored_snapshot(esr, 1), expected)

    def test_failed_owner_fallback_reuses_block_buffer(self, setup):
        """Satellite pin: with an owner failing mid-iteration the surviving
        pairs fall back to per-pair gathers -- one (rows, k) slice pulled
        from the staged block buffer per pair, never one gather per column
        -- and the stored copies stay byte-identical to the legacy loop."""
        cluster, partition, _, context = setup
        esr = self.make_esr(cluster, context)
        p0 = make_block(cluster, partition, 0)
        esr.after_spmv(p0, 0)
        baseline = stored_snapshot(esr, 0)
        p2 = make_block(cluster, partition, 2)  # same parity slot as iter 0
        cluster.fail_nodes([2])
        expected = legacy_block_stores(esr, p2, slot=0)
        esr.after_spmv(p2, 2)
        actual = stored_snapshot(esr, 0)
        for key in expected:
            assert actual[key].shape[1] == p2.n_cols
            assert actual[key].tobytes() == expected[key].tobytes()
        # Pairs owned by the failed rank keep the previous slot content on
        # surviving holders (legacy semantics: skip, not delete).
        for (holder, key), values in baseline.items():
            if key[2] == 2 and cluster.node(holder).is_alive:
                assert actual[(holder, key)].tobytes() == values.tobytes()

    def test_recover_block_returns_all_columns(self, setup):
        cluster, partition, _, context = setup
        esr = self.make_esr(cluster, context, phi=2)
        p_prev = make_block(cluster, partition, 6)
        p_cur = make_block(cluster, partition, 7)
        esr.after_spmv(p_prev, 6)
        esr.after_spmv(p_cur, 7)
        expected_prev = p_prev.to_global()
        expected_cur = p_cur.to_global()
        cluster.fail_nodes([2, 3])
        for rank in (2, 3):
            start, stop = partition.range_of(rank)
            rec_cur = esr.recover_block(rank, 7)
            rec_prev = esr.recover_block(rank, 6)
            assert rec_cur.shape == (stop - start, 3)
            assert np.array_equal(rec_cur, expected_cur[start:stop])
            assert np.array_equal(rec_prev, expected_prev[start:stop])

    def test_replicated_vector_roundtrip(self, setup):
        cluster, partition, _, context = setup
        esr = self.make_esr(cluster, context)
        beta = np.array([0.25, -1.5, 3.0])
        esr.store_replicated_scalars(5, beta=beta)
        beta[0] = 99.0  # driver-side mutation must not leak into the copies
        cluster.fail_nodes([0, 1])
        recovered = esr.recover_replicated_vector("beta")
        assert np.array_equal(recovered, [0.25, -1.5, 3.0])

    def test_redundancy_charge_messages_constant_volume_scales(self, setup):
        cluster, partition, _, context = setup
        from repro.cluster import Phase as P

        stats = {}
        for k in (1, 4):
            fresh = VirtualCluster(6, machine=MachineModel(jitter_rel_std=0.0))
            esr = ESRProtocol(fresh, context, phi=2, n_cols=k)
            esr.after_spmv(make_block(fresh, partition, 0, k=k), 0)
            stats[k] = (fresh.ledger.messages.get(P.REDUNDANCY_COMM, 0),
                        fresh.ledger.elements.get(P.REDUNDANCY_COMM, 0))
        assert stats[1][0] == stats[4][0]
        assert stats[4][1] == 4 * stats[1][1]

    def test_k1_block_protocol_charges_equal_vector_protocol(self, setup):
        cluster, partition, _, context = setup
        from repro.cluster import Phase as P

        vec_cluster = VirtualCluster(6,
                                     machine=MachineModel(jitter_rel_std=0.0))
        vec_esr = ESRProtocol(vec_cluster, context, phi=2)
        vec_esr.after_spmv(make_p(vec_cluster, partition, 0), 0)
        blk_cluster = VirtualCluster(6,
                                     machine=MachineModel(jitter_rel_std=0.0))
        blk_esr = ESRProtocol(blk_cluster, context, phi=2, n_cols=1)
        blk_esr.after_spmv(make_block(blk_cluster, partition, 0, k=1), 0)
        assert blk_cluster.ledger.times[P.REDUNDANCY_COMM] == \
            vec_cluster.ledger.times[P.REDUNDANCY_COMM]
        assert blk_cluster.ledger.elements[P.REDUNDANCY_COMM] == \
            vec_cluster.ledger.elements[P.REDUNDANCY_COMM]

    def test_mismatched_operand_rejected(self, setup):
        cluster, partition, _, context = setup
        esr = self.make_esr(cluster, context, k=3)
        with pytest.raises(ValueError):
            esr.after_spmv(make_p(cluster, partition, 0), 0)
        with pytest.raises(ValueError):
            esr.after_spmv(make_block(cluster, partition, 0, k=2), 0)

    def test_invalid_n_cols_rejected(self, setup):
        cluster, _, _, context = setup
        with pytest.raises(ValueError):
            ESRProtocol(cluster, context, phi=1, n_cols=0)


class TestOverheadSummary:
    def test_summary_fields(self, setup):
        cluster, _, _, context = setup
        esr = ESRProtocol(cluster, context, phi=2)
        summary = esr.overhead_summary()
        assert summary["phi"] == 2.0
        assert summary["lower_bound"] <= summary["per_iteration_time"] + 1e-15
        assert summary["per_iteration_time"] <= summary["upper_bound"] + 1e-15

    def test_overhead_time_matches_property(self, setup):
        cluster, _, _, context = setup
        esr = ESRProtocol(cluster, context, phi=3)
        assert esr.per_iteration_overhead_time == pytest.approx(
            esr.overhead_summary()["per_iteration_time"]
        )
