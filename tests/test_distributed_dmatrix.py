"""Tests for distributed sparse matrices."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster import MachineModel, NodeFailedError, Phase, VirtualCluster
from repro.distributed import BlockRowPartition, DistributedMatrix
from repro.matrices import poisson_2d


@pytest.fixture
def setup():
    cluster = VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0))
    a = poisson_2d(8)  # n = 64
    partition = BlockRowPartition(a.shape[0], 4)
    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    return cluster, partition, a, dist


class TestConstruction:
    def test_shape_and_nnz(self, setup):
        _, _, a, dist = setup
        assert dist.shape == a.shape
        assert dist.total_nnz() == a.nnz

    def test_row_blocks_match_global(self, setup):
        _, partition, a, dist = setup
        for rank in range(4):
            start, stop = partition.range_of(rank)
            expected = a[start:stop, :]
            block = dist.row_block(rank)
            assert (block != expected).nnz == 0

    def test_to_global_roundtrip(self, setup):
        _, _, a, dist = setup
        assert (dist.to_global() != a).nnz == 0

    def test_size_mismatch_rejected(self, setup):
        cluster, partition, a, _ = setup
        with pytest.raises(ValueError):
            DistributedMatrix.from_global(cluster, partition, "bad", sp.identity(10))

    def test_nonsquare_rejected(self, setup):
        cluster, partition, _, _ = setup
        rect = sp.csr_matrix(np.ones((64, 32)))
        with pytest.raises(Exception):
            DistributedMatrix.from_global(cluster, partition, "bad", rect)


class TestStructure:
    def test_diagonal_block(self, setup):
        _, partition, a, dist = setup
        for rank in range(4):
            start, stop = partition.range_of(rank)
            expected = a[start:stop, start:stop]
            assert (dist.diagonal_block(rank) != expected).nnz == 0

    def test_diagonal(self, setup):
        _, _, a, dist = setup
        assert np.allclose(dist.diagonal(), a.diagonal())

    def test_needed_column_indices(self, setup):
        _, partition, a, dist = setup
        for rank in range(4):
            start, stop = partition.range_of(rank)
            expected = np.unique(a[start:stop, :].indices)
            assert np.array_equal(dist.needed_column_indices(rank), expected)

    def test_off_diagonal_nnz(self, setup):
        _, _, _, dist = setup
        for rank in range(4):
            assert dist.off_diagonal_nnz(rank) == \
                dist.nnz_of(rank) - dist.diagonal_block(rank).nnz

    def test_max_block_nnz(self, setup):
        _, _, _, dist = setup
        assert dist.max_block_nnz() == max(dist.nnz_of(r) for r in range(4))


class TestFailureAndRecovery:
    def test_row_block_lost_on_failure(self, setup):
        cluster, _, _, dist = setup
        cluster.fail_nodes([1])
        with pytest.raises(NodeFailedError):
            dist.row_block(1)

    def test_restore_from_storage(self, setup):
        cluster, partition, a, dist = setup
        cluster.fail_nodes([2])
        cluster.replace_nodes([2])
        block = dist.restore_block_to_node(2)
        start, stop = partition.range_of(2)
        assert (block != a[start:stop, :]).nnz == 0
        assert dist.has_block(2)

    def test_recovery_rows(self, setup):
        cluster, partition, a, dist = setup
        rows = dist.recovery_rows([1, 3])
        expected = sp.vstack([
            a[partition.slice_of(1), :], a[partition.slice_of(3), :]
        ])
        assert (rows != expected).nnz == 0

    def test_recovery_rows_charged(self, setup):
        cluster, _, _, dist = setup
        before = cluster.ledger.total_time([Phase.STORAGE_RETRIEVE])
        dist.recovery_rows([0], charge=True)
        assert cluster.ledger.total_time([Phase.STORAGE_RETRIEVE]) > before

    def test_recovery_rows_uncharged(self, setup):
        cluster, _, _, dist = setup
        dist.recovery_rows([0], charge=False)
        assert cluster.ledger.total_time([Phase.STORAGE_RETRIEVE]) == 0.0

    def test_storage_survives_all_failures(self, setup):
        cluster, _, a, dist = setup
        cluster.fail_nodes([0, 1, 2, 3])
        rows = dist.recovery_rows([0, 1, 2, 3], charge=False)
        assert (rows != a).nnz == 0

    def test_submatrix_from_storage(self, setup):
        _, partition, a, dist = setup
        rows = partition.indices_of(1)
        cols = partition.indices_of(2)
        sub = dist.submatrix(rows, cols, from_storage=True)
        assert (sub != a[rows, :][:, cols]).nnz == 0

    def test_optional_no_storage(self, setup):
        cluster, partition, a, _ = setup
        dist = DistributedMatrix.from_global(cluster, partition, "B", a,
                                             keep_in_storage=False)
        with pytest.raises(KeyError):
            dist.row_block_from_storage(0)
