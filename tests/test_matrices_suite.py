"""Tests for the synthetic Table-1 matrix suite."""

import pytest

from repro.matrices.properties import is_symmetric
from repro.matrices.suite import build_matrix, get_record, matrix_ids, suite_table
from repro.utils.validation import check_spd_sample


class TestRecords:
    def test_all_eight_matrices_present(self):
        assert matrix_ids() == [f"M{i}" for i in range(1, 9)]

    def test_record_metadata(self):
        record = get_record("M5")
        assert record.original_name == "Emilia_923"
        assert record.problem_type == "Structural"
        assert record.original_n == 923_136
        assert record.original_nnz_per_row == pytest.approx(43.7, abs=0.5)

    def test_case_insensitive_lookup(self):
        assert get_record("m3").original_name == "G3_circuit"

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            get_record("M99")

    def test_describe(self):
        assert "audikw_1" in get_record("M8").describe()

    def test_ordered_by_increasing_nnz(self):
        nnzs = [get_record(mid).original_nnz for mid in matrix_ids()]
        assert nnzs == sorted(nnzs)


class TestAnalogues:
    @pytest.mark.parametrize("matrix_id", ["M1", "M3", "M4"])
    def test_analogues_are_spd(self, matrix_id):
        a = build_matrix(matrix_id, n=1500, seed=0)
        assert is_symmetric(a)
        check_spd_sample(a, n_probes=2)

    def test_structural_analogue_spd(self):
        a = build_matrix("M8", n=800, seed=0)
        assert is_symmetric(a)
        check_spd_sample(a, n_probes=2)

    def test_target_size_roughly_respected(self):
        a = build_matrix("M3", n=2000, seed=0)
        assert 1500 <= a.shape[0] <= 2500

    def test_sparse_vs_dense_regimes(self):
        sparse_analogue = build_matrix("M3", n=2000, seed=0)   # circuit-like
        dense_analogue = build_matrix("M8", n=2000, seed=0)    # structural
        sparse_rows = sparse_analogue.nnz / sparse_analogue.shape[0]
        dense_rows = dense_analogue.nnz / dense_analogue.shape[0]
        assert sparse_rows < 8
        assert dense_rows > 25
        assert dense_rows > 3 * sparse_rows

    def test_deterministic_for_fixed_seed(self):
        a = build_matrix("M4", n=1000, seed=5)
        b = build_matrix("M4", n=1000, seed=5)
        assert (a != b).nnz == 0

    def test_too_small_target_rejected(self):
        with pytest.raises(ValueError):
            build_matrix("M1", n=4)


class TestSuiteTable:
    def test_rows_for_selected_ids(self):
        rows = suite_table(n=800, ids=["M1", "M3"])
        assert [r["id"] for r in rows] == ["M1", "M3"]
        for row in rows:
            assert row["analogue_n"] > 0
            assert row["analogue_nnz"] > 0
            assert row["original_nnz_per_row"] > 0

    def test_row_fields(self):
        (row,) = suite_table(n=800, ids=["M4"])
        expected_keys = {
            "id", "name", "problem_type", "original_n", "original_nnz",
            "original_nnz_per_row", "analogue_n", "analogue_nnz",
            "analogue_nnz_per_row", "analogue_half_bandwidth",
        }
        assert expected_keys <= set(row.keys())
