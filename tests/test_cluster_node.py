"""Tests for nodes and node memories (failure semantics)."""

import numpy as np
import pytest

from repro.cluster.errors import NodeFailedError
from repro.cluster.node import Node, NodeStatus


class TestNodeLifecycle:
    def test_initial_state(self):
        node = Node(rank=3)
        assert node.rank == 3
        assert node.status is NodeStatus.ALIVE
        assert node.is_alive and not node.is_failed
        assert node.failure_count == 0

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            Node(rank=-1)

    def test_invalid_processor_count_rejected(self):
        with pytest.raises(ValueError):
            Node(rank=0, n_processors=0)

    def test_fail_erases_memory(self):
        node = Node(rank=0)
        node.memory["key"] = np.arange(5)
        node.fail()
        assert node.is_failed
        assert node.failure_count == 1

    def test_replace_requires_failed(self):
        node = Node(rank=0)
        with pytest.raises(ValueError):
            node.replace()

    def test_replace_after_failure(self):
        node = Node(rank=0)
        node.memory["key"] = 1
        node.fail()
        node.replace()
        assert node.status is NodeStatus.REPLACEMENT
        assert node.is_alive
        assert "key" not in node.memory

    def test_multiple_failures_counted(self):
        node = Node(rank=0)
        node.fail()
        node.replace()
        node.fail()
        assert node.failure_count == 2


class TestNodeMemory:
    def test_set_get_delete(self):
        node = Node(rank=0)
        node.memory["a"] = 42
        assert node.memory["a"] == 42
        assert "a" in node.memory
        del node.memory["a"]
        assert "a" not in node.memory

    def test_get_default(self):
        node = Node(rank=0)
        assert node.memory.get("missing", "fallback") == "fallback"

    def test_len_and_iter(self):
        node = Node(rank=0)
        node.memory["x"] = 1
        node.memory["y"] = 2
        assert len(node.memory) == 2
        assert set(iter(node.memory)) == {"x", "y"}

    def test_access_after_failure_raises(self):
        node = Node(rank=2)
        node.memory["data"] = np.ones(3)
        node.fail()
        with pytest.raises(NodeFailedError):
            _ = node.memory["data"]
        with pytest.raises(NodeFailedError):
            node.memory["new"] = 1
        with pytest.raises(NodeFailedError):
            "data" in node.memory

    def test_failed_error_carries_rank(self):
        node = Node(rank=7)
        node.fail()
        with pytest.raises(NodeFailedError) as excinfo:
            node.memory.keys()
        assert excinfo.value.rank == 7

    def test_nbytes_counts_arrays(self):
        node = Node(rank=0)
        node.memory["arr"] = np.zeros(100, dtype=np.float64)
        assert node.memory.nbytes() >= 800

    def test_pop(self):
        node = Node(rank=0)
        node.memory["a"] = 5
        assert node.memory.pop("a") == 5
        assert node.memory.pop("a", None) is None
