"""Tests for the local-view SpMV execution engine.

The central property: the engine path of ``distributed_spmv`` is equivalent
to the dense-gather reference path -- bit-identical numeric results and
bit-identical simulated-time charges -- including after failure/recovery
cycles that rewrite matrix blocks (cache invalidation) and for degenerate
scatter plans (single node, no off-node dependencies).
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FailureEvent,
    FailureInjector,
    MachineModel,
    NodeFailedError,
    VirtualCluster,
)
from repro.core.api import distribute_problem
from repro.core.resilient_pcg import ResilientPCG
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedVector,
    distributed_spmv,
)
from repro.matrices import build_matrix, poisson_2d
from repro.precond import make_preconditioner


def make_pair(matrix, n_parts):
    """Two identical distributed problems on separate clusters."""
    n = matrix.shape[0]
    partition = BlockRowPartition(n, n_parts)
    out = []
    for _ in range(2):
        cluster = VirtualCluster(n_parts, machine=MachineModel(jitter_rel_std=0.0))
        dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
        ctx = CommunicationContext.from_matrix(dist)
        out.append((cluster, dist, ctx))
    return partition, out


def spmv_both_paths(matrix, n_parts, values, repeats=3, charge=True):
    """Run engine and reference paths on twin clusters; return both results."""
    partition, (engine_side, reference_side) = make_pair(matrix, n_parts)
    results = []
    for (cluster, dist, ctx), use_engine in ((engine_side, True),
                                             (reference_side, False)):
        x = DistributedVector.from_global(cluster, partition, "x", values)
        y = DistributedVector.zeros(cluster, partition, "y")
        for _ in range(repeats):
            distributed_spmv(dist, x, y, ctx, charge=charge, engine=use_engine)
        results.append((y.to_global(), cluster.ledger))
    return results


class TestEquivalence:
    @pytest.mark.parametrize("matrix_id,n,n_parts", [
        ("M1", 1500, 4), ("M3", 2000, 8), ("M4", 1500, 6), ("M8", 1500, 5),
    ])
    def test_bit_identical_results_across_suite(self, matrix_id, n, n_parts):
        matrix = build_matrix(matrix_id, n=n, seed=0)
        values = np.random.default_rng(7).standard_normal(matrix.shape[0])
        (y_engine, _), (y_reference, _) = spmv_both_paths(matrix, n_parts, values)
        assert np.array_equal(y_engine, y_reference)

    @pytest.mark.parametrize("n_parts", [2, 4, 8])
    def test_bit_identical_charges(self, n_parts):
        matrix = poisson_2d(20)
        values = np.linspace(-1.0, 1.0, matrix.shape[0])
        (_, led_engine), (_, led_reference) = spmv_both_paths(
            matrix, n_parts, values, repeats=5
        )
        assert led_engine.times == led_reference.times
        assert led_engine.messages == led_reference.messages
        assert led_engine.elements == led_reference.elements

    def test_empty_scatter_plan_single_node(self):
        matrix = poisson_2d(8)  # n = 64
        values = np.arange(64.0)
        (y_engine, led), (y_reference, _) = spmv_both_paths(matrix, 1, values)
        assert np.array_equal(y_engine, y_reference)
        assert np.array_equal(y_engine, matrix @ values)
        # no off-node dependencies: nothing charged to the halo phase
        assert led.total_elements(["comm.halo"]) == 0

    def test_block_diagonal_matrix_has_no_ghosts(self):
        blocks = [np.eye(4) * (i + 2) for i in range(4)]
        matrix = sp.block_diag(blocks, format="csr")
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 4)
        engine = dist.spmv_engine(ctx)
        assert engine is not None
        for rank in range(4):
            assert engine.ghost_indices(rank).size == 0

    def test_output_may_alias_input(self):
        matrix = poisson_2d(10)
        values = np.random.default_rng(3).standard_normal(100)
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 4)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        distributed_spmv(dist, x, x, ctx)
        assert np.array_equal(x.to_global(), matrix @ values)

    def test_fails_when_owner_failed(self):
        matrix = poisson_2d(10)
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 4)
        x = DistributedVector.from_global(cluster, partition, "x", np.ones(100))
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, ctx)  # engine built and cached
        cluster.fail_nodes([1])
        with pytest.raises(NodeFailedError):
            distributed_spmv(dist, x, y, ctx)


class TestGhostCompression:
    def test_ghost_indices_match_scatter_plan(self):
        matrix = build_matrix("M3", n=1200, seed=0)
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 6)
        engine = dist.spmv_engine(ctx)
        for rank in range(6):
            senders = ctx.senders_to(rank)
            expected = (np.unique(np.concatenate(
                [ctx.send_indices(src, rank) for src in senders]
            )) if senders else np.empty(0, dtype=np.int64))
            assert np.array_equal(engine.ghost_indices(rank), expected)

    def test_in_place_value_edits_stay_live(self):
        """The engine shares data/indptr with the stored blocks, so value
        edits without set_block are reflected exactly like on the reference
        path."""
        matrix = poisson_2d(10)
        values = np.random.default_rng(5).standard_normal(100)
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 4)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, ctx, charge=False)  # engine cached
        dist.row_block(1).data *= 2.0
        y_engine = DistributedVector.zeros(cluster, partition, "y1")
        y_reference = DistributedVector.zeros(cluster, partition, "y2")
        distributed_spmv(dist, x, y_engine, ctx, charge=False, engine=True)
        distributed_spmv(dist, x, y_reference, ctx, charge=False,
                         engine=False)
        assert np.array_equal(y_engine.to_global(), y_reference.to_global())

    def test_local_block_preserves_nnz(self):
        matrix = build_matrix("M4", n=1000, seed=0)
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 5)
        engine = dist.spmv_engine(ctx)
        for rank in range(5):
            local = engine.local_block(rank)
            assert local.nnz == dist.row_block(rank).nnz
            n_local = partition.size_of(rank)
            assert local.shape == (n_local,
                                   n_local + engine.ghost_indices(rank).size)


class TestCache:
    def test_engine_cached_per_context(self):
        matrix = poisson_2d(12)
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 4)
        engine = dist.spmv_engine(ctx)
        assert dist.spmv_engine(ctx) is engine
        other_ctx = CommunicationContext.from_matrix(dist)
        assert dist.spmv_engine(other_ctx) is not engine

    def test_default_context_calls_reuse_one_engine(self):
        """Repeated ``context=None`` calls must not build (and leak) a fresh
        plan + engine per call."""
        matrix = poisson_2d(12)
        partition, ((cluster, dist, _), _) = make_pair(matrix, 4)
        x = DistributedVector.from_global(cluster, partition, "x",
                                          np.arange(144.0))
        y = DistributedVector.zeros(cluster, partition, "y")
        for _ in range(10):
            distributed_spmv(dist, x, y)
        assert len(dist._spmv_engines) == 1
        assert dist.default_context() is dist.default_context()

    def test_engine_cache_is_bounded(self):
        matrix = poisson_2d(12)
        partition, ((cluster, dist, _), _) = make_pair(matrix, 4)
        x = DistributedVector.from_global(cluster, partition, "x",
                                          np.arange(144.0))
        y = DistributedVector.zeros(cluster, partition, "y")
        hot_ctx = CommunicationContext.from_matrix(dist)
        hot_engine = dist.spmv_engine(hot_ctx)
        for _ in range(3 * dist._ENGINE_CACHE_SIZE):
            ctx = CommunicationContext.from_matrix(dist)
            distributed_spmv(dist, x, y, ctx)
            # LRU: touching the long-lived plan keeps it cached throughout
            assert dist.spmv_engine(hot_ctx) is hot_engine
        assert len(dist._spmv_engines) <= dist._ENGINE_CACHE_SIZE
        assert np.array_equal(y.to_global(), matrix @ np.arange(144.0))

    def test_engine_recached_under_own_key_after_invalidation(self):
        """Eviction of stale entries must not corrupt the key the rebuilt
        engine is stored under (regression: loop-variable shadowing)."""
        matrix = poisson_2d(12)
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 4)
        contexts = [CommunicationContext.from_matrix(dist)
                    for _ in range(dist._ENGINE_CACHE_SIZE)]
        for extra_ctx in contexts:
            assert dist.spmv_engine(extra_ctx) is not None
        dist.restore_block_to_node(0, charge=False)  # all entries now stale
        rebuilt = dist.spmv_engine(ctx)
        assert rebuilt is not None
        assert id(ctx) in dist._spmv_engines
        assert dist.spmv_engine(ctx) is rebuilt  # hit, not a rebuild

    def test_failed_owner_charge_order_matches_reference(self):
        """With a failed owner and a cold engine cache, both paths must
        leave identical ledgers (halo charged, then the raise)."""
        matrix = poisson_2d(10)
        partition, ((c_eng, d_eng, _), (c_ref, d_ref, _)) = make_pair(matrix, 4)
        ledgers = []
        for cluster, dist, use_engine in ((c_eng, d_eng, True),
                                          (c_ref, d_ref, False)):
            x = DistributedVector.from_global(cluster, partition, "x",
                                              np.ones(100))
            y = DistributedVector.zeros(cluster, partition, "y")
            fresh_ctx = CommunicationContext.from_matrix(dist)  # cold cache
            cluster.fail_nodes([2])
            with pytest.raises(NodeFailedError):
                distributed_spmv(dist, x, y, fresh_ctx, engine=use_engine)
            ledgers.append(cluster.ledger)
        assert ledgers[0].times == ledgers[1].times
        assert ledgers[0].messages == ledgers[1].messages
        assert ledgers[0].elements == ledgers[1].elements

    def test_restore_block_invalidates_cache(self):
        matrix = poisson_2d(12)
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 4)
        engine = dist.spmv_engine(ctx)
        version = dist.structure_version
        dist.restore_block_to_node(2, charge=False)
        assert dist.structure_version > version
        rebuilt = dist.spmv_engine(ctx)
        assert rebuilt is not engine
        # the rebuilt engine computes with the restored blocks
        x = DistributedVector.from_global(
            cluster, partition, "x", np.arange(144.0)
        )
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, ctx)
        assert np.array_equal(y.to_global(), matrix @ np.arange(144.0))

    def test_ownership_violating_context_falls_back_to_reference(self):
        """A plan whose edges ship indices their 'sender' does not own must
        be rejected at build time, not silently mis-staged."""
        matrix = poisson_2d(12)
        partition, ((cluster, dist, _), _) = make_pair(matrix, 4)
        full_cols = np.arange(144, dtype=np.int64)
        # rank 0 "sends" every index, including ones owned by other ranks
        bogus_ctx = CommunicationContext(
            partition, {(0, dst): full_cols for dst in range(1, 4)}
        )
        assert dist.spmv_engine(bogus_ctx) is None
        x = DistributedVector.from_global(cluster, partition, "x",
                                          np.arange(144.0))
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, bogus_ctx, charge=False)
        assert np.array_equal(y.to_global(), matrix @ np.arange(144.0))

    def test_mismatched_context_falls_back_to_reference(self):
        """A plan that does not cover the sparsity pattern must not be used
        numerically -- the reference path's numerics ignore the context."""
        matrix = poisson_2d(12)  # has off-diagonal blocks
        partition, ((cluster, dist, ctx), _) = make_pair(matrix, 4)
        empty_ctx = CommunicationContext(partition, {})
        assert dist.spmv_engine(empty_ctx) is None
        x = DistributedVector.from_global(
            cluster, partition, "x", np.arange(144.0)
        )
        y = DistributedVector.zeros(cluster, partition, "y")
        distributed_spmv(dist, x, y, empty_ctx, charge=False)
        assert np.array_equal(y.to_global(), matrix @ np.arange(144.0))


class TestAfterRecovery:
    def test_engine_matches_reference_after_failure_recovery_cycle(self):
        """Failure -> ESR recovery rewrites matrix blocks on replacement
        nodes; the cached engine must be invalidated and stay exact."""
        matrix = poisson_2d(20)  # n = 400
        problem = distribute_problem(matrix, n_nodes=5, seed=0,
                                     machine=MachineModel(jitter_rel_std=0.0))
        precond = make_preconditioner("block_jacobi")
        precond.setup(problem.matrix.to_global(), problem.partition)
        injector = FailureInjector([FailureEvent(8, (1, 3))])
        solver = ResilientPCG(problem.matrix, problem.rhs, precond, phi=2,
                              failure_injector=injector,
                              context=problem.context)
        result = solver.solve()
        assert result.converged
        assert result.n_failures_recovered == 2

        values = np.random.default_rng(11).standard_normal(problem.n)
        x = DistributedVector.from_global(problem.cluster, problem.partition,
                                          "probe_x", values)
        y_engine = DistributedVector.zeros(problem.cluster, problem.partition,
                                           "probe_y1")
        y_reference = DistributedVector.zeros(problem.cluster,
                                              problem.partition, "probe_y2")
        distributed_spmv(problem.matrix, x, y_engine, problem.context,
                         charge=False, engine=True)
        distributed_spmv(problem.matrix, x, y_reference, problem.context,
                         charge=False, engine=False)
        assert np.array_equal(y_engine.to_global(), y_reference.to_global())

    def test_solver_trajectory_identical_with_and_without_engine(self):
        """Full solves through the engine and the reference path agree."""
        matrix = poisson_2d(16)
        results = []
        for use_engine in (True, False):
            problem = distribute_problem(
                matrix, n_nodes=4, seed=0,
                machine=MachineModel(jitter_rel_std=0.0),
            )
            precond = make_preconditioner("block_jacobi")
            precond.setup(problem.matrix.to_global(), problem.partition)
            solver = ResilientPCG(problem.matrix, problem.rhs, precond, phi=1,
                                  failure_injector=FailureInjector(
                                      [FailureEvent(5, (2,))]
                                  ),
                                  context=problem.context)
            if not use_engine:
                solver._spmv_p = lambda: distributed_spmv(
                    solver.matrix, solver.p, solver.ap, solver.context,
                    engine=False,
                )
            results.append(solver.solve())
        with_engine, without_engine = results
        assert with_engine.converged and without_engine.converged
        assert with_engine.iterations == without_engine.iterations
        assert np.allclose(with_engine.x, without_engine.x,
                           rtol=1e-12, atol=1e-14)
        assert with_engine.simulated_time == pytest.approx(
            without_engine.simulated_time, rel=1e-12
        )


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(24, 400), n_parts=st.integers(1, 12),
       density=st.floats(0.01, 0.2), seed=st.integers(0, 2**32 - 1))
def test_property_engine_equals_reference(n, n_parts, density, seed):
    """For random sparse matrices and partitions the engine path returns
    bit-identical results to the dense-gather reference path."""
    n_parts = min(n_parts, n)
    rng = np.random.default_rng(seed)
    random_part = sp.random(n, n, density=density, random_state=rng,
                            format="csr")
    matrix = (random_part + random_part.T + sp.eye(n)).tocsr()
    values = rng.standard_normal(n)
    (y_engine, _), (y_reference, _) = spmv_both_paths(
        matrix, n_parts, values, repeats=1, charge=False
    )
    assert np.array_equal(y_engine, y_reference)
