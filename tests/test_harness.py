"""Tests for the experiment harness (runner, tables, figures).

These use a small custom matrix and tiny repetition counts so the full
Table-2-style pipeline runs in seconds while still exercising every code path
the benchmarks rely on.
"""

import numpy as np
import pytest

from repro.failures import FailureLocation, FailureScenario
from repro.harness import (
    BoxStats,
    ExperimentConfig,
    figure_series,
    format_table,
    progress_sweep,
    render_table1,
    render_table2,
    render_table3,
    run_experiment,
    run_failure_free,
    run_matrix_study,
    run_reference,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.harness.experiment import run_with_failures
from repro.matrices import poisson_2d


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        matrix=poisson_2d(16),        # n = 256, fast
        n_nodes=4,
        repetitions=2,
        preconditioner="block_jacobi",
        jitter_rel_std=0.01,
        seed=7,
    )


@pytest.fixture(scope="module")
def study(config):
    return run_matrix_study(
        config, phis=(1, 2),
        locations=(FailureLocation.START, FailureLocation.CENTER),
        fractions=(0.5,),
    )


class TestExperimentRunner:
    def test_reference_runs(self, config):
        result = run_reference(config)
        assert result.n == 2
        assert result.all_converged
        assert result.mean() > 0
        assert result.std() >= 0
        assert result.mean_iterations > 1

    def test_block_studies_run_end_to_end(self):
        """n_rhs > 1 composes the block solvers harness-side: reference and
        failure runs both dispatch to the (resilient) block PCG and the
        repetition records consume BlockSolveResult fields."""
        config = ExperimentConfig(
            matrix=poisson_2d(16), n_nodes=4, repetitions=2,
            preconditioner="block_jacobi", jitter_rel_std=0.0, seed=7,
            n_rhs=3,
        )
        assert config.solve_spec().solver == "block_pcg"
        assert config.solve_spec(phi=1).solver == "resilient_block_pcg"
        reference = run_reference(config)
        assert reference.n == 2
        assert reference.all_converged
        assert reference.mean_iterations > 0
        disturbed = run_with_failures(
            config, phi=2,
            scenario=FailureScenario(n_failures=2, progress_fraction=0.5,
                                     location=FailureLocation.CENTER),
            reference_iterations=int(reference.mean_iterations),
        )
        assert disturbed.all_converged
        assert disturbed.mean("recovery_time") > 0
        assert np.isfinite(disturbed.max_abs_residual_deviation())

    def test_failure_free_overhead_positive(self, config):
        reference = run_reference(config)
        undisturbed = run_failure_free(config, phi=2)
        assert undisturbed.all_converged
        assert undisturbed.mean() > reference.mean()

    def test_run_with_failures(self, config):
        scenario = FailureScenario(n_failures=2, progress_fraction=0.5,
                                   location=FailureLocation.START)
        result = run_with_failures(config, 2, scenario, reference_iterations=20)
        assert result.all_converged
        assert all(r.n_failures == 2 for r in result.repetitions)
        assert result.mean("recovery_time") > 0

    def test_run_experiment_dispatch(self, config):
        assert run_experiment(config).n == 2
        assert run_experiment(config, phi=1).n == 2
        scenario = FailureScenario(n_failures=1, progress_fraction=0.5)
        assert run_experiment(config, phi=1, scenario=scenario).n == 2

    def test_repetitions_vary_with_jitter(self, config):
        result = run_reference(config)
        times = result.times()
        assert len(set(times)) > 1

    def test_summary_fields(self, config):
        summary = run_reference(config).summary()
        assert {"label", "mean_time", "std_time", "mean_iterations"} <= set(summary)


class TestMatrixStudy:
    def test_study_quantities(self, study):
        assert study.t0 > 0
        for phi in (1, 2):
            overhead = study.undisturbed_overhead(phi)
            assert np.isfinite(overhead)
        assert study.undisturbed_overhead(2) >= study.undisturbed_overhead(1) - 5.0

    def test_reconstruction_and_failure_overheads(self, study):
        for phi in (1, 2):
            for location in ("start", "center"):
                mean_rec, std_rec = study.reconstruction_time(phi, location)
                mean_tot, _ = study.overhead_with_failures(phi, location)
                assert mean_rec > 0
                assert std_rec >= 0
                assert mean_tot > 0

    def test_residual_deviation_metrics(self, study):
        assert np.isfinite(study.max_delta_esr())
        assert np.isfinite(study.delta_pcg())

    def test_phi_capped_by_node_count(self, config):
        study = run_matrix_study(config, phis=(1, 99), locations=(FailureLocation.START,),
                                 fractions=(0.5,))
        assert list(study.undisturbed.keys()) == [1]


class TestTables:
    def test_table1(self):
        rows = table1_rows(ids=["M1", "M3"], n=600)
        text = render_table1(rows)
        assert "parabolic_fem" in text and "G3_circuit" in text

    def test_table2(self, study):
        rows = table2_rows([study])
        assert len(rows) == 2  # one per location
        for row in rows:
            assert row["t0"] == pytest.approx(study.t0)
            assert "undisturbed_overhead_phi1" in row
            assert "overhead_failures_phi2" in row
        text = render_table2([study])
        assert "Table 2" in text and "+/-" in text

    def test_table3(self, study):
        rows = table3_rows([study])
        assert len(rows) == 1
        text = render_table3([study])
        assert "Delta_PCG" in text

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3e-7]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # title + header + separator + two data rows
        assert len(lines) == 5
        assert "3.00e-07" in lines[-1]


class TestFigures:
    def test_box_stats(self):
        box = BoxStats([1.0, 2.0, 3.0, 4.0, 100.0])
        assert box.median == 3.0
        assert box.q1 <= box.median <= box.q3
        assert box.whisker_high <= 100.0
        d = box.as_dict()
        assert d["n"] == 5

    def test_figure_series(self, study):
        series = figure_series(study, FailureLocation.CENTER)
        assert series.phis() == [1, 2]
        assert series.reference_mean == pytest.approx(study.t0)
        overhead = series.relative_overhead(2)
        assert np.isfinite(overhead)
        assert "Figure panel" in series.render()

    def test_progress_sweep(self, config):
        sweep = progress_sweep(config, phi=1, location=FailureLocation.START,
                               fractions=(0.2, 0.8))
        assert sweep.fractions() == [0.2, 0.8]
        assert all(m > 0 for m in sweep.medians())
        assert np.isfinite(sweep.spread())
        assert "Figure 4" in sweep.render()
