"""Tests for the metrics module and the high-level convenience API."""

import numpy as np
import pytest

from repro.cluster import MachineModel
from repro.core.api import (
    build_failure_events,
    distribute_problem,
    reference_solve,
    resilient_solve,
    solve_with_failures,
)
from repro.core.metrics import (
    compare_runs,
    convergence_rate_estimate,
    iterations_to_tolerance,
    max_residual_difference,
    relative_residual_difference,
    residual_difference_of,
    state_difference,
)
from repro.matrices import poisson_2d
from repro.solvers import pcg
from repro.solvers.result import SolveResult


class TestMetrics:
    def test_relative_residual_difference_formula(self):
        assert relative_residual_difference(1.1e-8, 1.0e-8) == pytest.approx(0.1)
        assert relative_residual_difference(0.9e-8, 1.0e-8) == pytest.approx(-0.1)

    def test_zero_denominator_gives_nan(self):
        assert np.isnan(relative_residual_difference(1.0, 0.0))

    def test_residual_difference_of_result(self):
        a = poisson_2d(10)
        b = np.random.default_rng(0).standard_normal(100)
        # Stop well above the rounding floor so the recursive and the true
        # residual still agree closely (the regime of the paper's Table 3).
        result = pcg(a, b, rtol=1e-6)
        value = residual_difference_of(result)
        assert np.isfinite(value)
        assert abs(value) < 1e-3

    def test_max_residual_difference_signed(self):
        def fake(dev):
            return SolveResult(x=np.zeros(1), converged=True, iterations=1,
                               final_residual_norm=(1 + dev) * 1e-8,
                               true_residual_norm=1e-8)
        results = [fake(0.1), fake(-0.5), fake(0.2)]
        assert max_residual_difference(results) == pytest.approx(-0.5)

    def test_max_residual_difference_empty(self):
        assert np.isnan(max_residual_difference([]))

    def test_compare_runs(self):
        a = poisson_2d(10)
        b = a @ np.ones(100)
        r1 = pcg(a, b, rtol=1e-8)
        r2 = pcg(a, b, rtol=1e-10)
        comparison = compare_runs(r1, r2)
        assert comparison.reference_iterations == r1.iterations
        assert comparison.resilient_iterations == r2.iterations
        assert comparison.solution_relative_difference < 1e-6
        assert "reference_iterations" in comparison.as_dict()

    def test_convergence_rate(self):
        rate = convergence_rate_estimate([1.0, 0.1, 0.01, 0.001])
        assert rate == pytest.approx(0.1)
        assert np.isnan(convergence_rate_estimate([1.0]))

    def test_iterations_to_tolerance(self):
        history = [1.0, 0.5, 0.05, 0.001]
        assert iterations_to_tolerance(history, 0.1) == 2
        assert iterations_to_tolerance(history, 1e-6) is None
        assert iterations_to_tolerance([], 0.1) is None

    def test_state_difference(self):
        a = {"x": np.ones(4), "r": np.zeros(4)}
        b = {"x": np.ones(4) * 1.1, "r": np.zeros(4)}
        diffs = state_difference(a, b)
        assert diffs["x"] == pytest.approx(0.1)
        assert diffs["r"] == 0.0


class TestApi:
    def test_distribute_problem_defaults(self):
        a = poisson_2d(12)
        problem = distribute_problem(a, n_nodes=4)
        assert problem.n == 144
        assert problem.n_nodes == 4
        # default rhs makes the exact solution all-ones
        assert np.allclose(problem.rhs.to_global(), a @ np.ones(144))

    def test_distribute_problem_existing_cluster(self):
        from repro.cluster import VirtualCluster
        cluster = VirtualCluster(3)
        problem = distribute_problem(poisson_2d(9), cluster=cluster)
        assert problem.n_nodes == 3
        assert problem.cluster is cluster

    def test_build_failure_events_tuples(self):
        events = build_failure_events([(5, [1, 2]), (9, 3)])
        assert events[0].ranks == (1, 2)
        assert events[1].ranks == (3,)
        assert events[1].iteration == 9

    def test_build_failure_events_passthrough(self):
        from repro.cluster import FailureEvent
        event = FailureEvent(3, (0,))
        assert build_failure_events([event]) == [event]

    def test_preconditioner_instance_accepted(self):
        from repro.precond import JacobiPreconditioner
        a = poisson_2d(12)
        problem = distribute_problem(a, n_nodes=4)
        result = reference_solve(problem, preconditioner=JacobiPreconditioner())
        assert result.converged

    def test_solve_with_failures_one_call(self):
        a = poisson_2d(16)
        result = solve_with_failures(
            a, n_nodes=4, phi=2, failures=[(8, [1, 2])],
            preconditioner="block_jacobi",
            machine=MachineModel(jitter_rel_std=0.0),
        )
        assert result.converged
        assert result.n_failures_recovered == 2
        assert np.allclose(result.x, np.ones(a.shape[0]), atol=1e-6)

    def test_resilient_solve_default_preconditioner(self):
        a = poisson_2d(12)
        problem = distribute_problem(a, n_nodes=4)
        result = resilient_solve(problem, phi=1)
        assert result.converged
        assert result.info["preconditioner"] == "block_jacobi"

    def test_package_level_exports(self):
        import repro
        assert hasattr(repro, "ResilientPCG")
        assert hasattr(repro, "solve_with_failures")
        assert repro.__version__
