"""Tests for the stochastic failure-trace generator."""

import numpy as np
import pytest

from repro.cluster import FailureInjector, MachineModel, VirtualCluster
from repro.failures.traces import (
    FailureTrace,
    LifetimeModel,
    TraceEvent,
    TraceSpec,
    generate_trace,
)
from repro.utils.rng import as_rng


class TestLifetimeModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LifetimeModel(distribution="lognormal")
        with pytest.raises(ValueError):
            LifetimeModel(scale=0.0)
        with pytest.raises(ValueError):
            LifetimeModel(distribution="weibull", shape=-1.0)

    def test_round_trip(self):
        model = LifetimeModel(distribution="weibull", scale=120.0, shape=0.7)
        assert LifetimeModel.from_dict(model.to_dict()) == model
        with pytest.raises(ValueError):
            LifetimeModel.from_dict({"distribution": "exponential",
                                     "bogus": 1})

    def test_exponential_mean(self):
        assert LifetimeModel(scale=250.0).mean() == 250.0

    @pytest.mark.parametrize("model", [
        LifetimeModel(scale=80.0),
        LifetimeModel(distribution="weibull", scale=80.0, shape=1.5),
        LifetimeModel(distribution="weibull", scale=80.0, shape=0.8),
    ])
    def test_sample_mean_matches_model_mean(self, model):
        rng = as_rng(123)
        draws = np.array([model.sample(rng) for _ in range(4000)])
        assert np.all(draws >= 0.0)
        assert abs(draws.mean() - model.mean()) < 0.1 * model.mean()


class TestTraceSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(n_nodes=1)
        with pytest.raises(ValueError):
            TraceSpec(horizon=0)
        with pytest.raises(ValueError):
            TraceSpec(burst_rate=-0.1)
        with pytest.raises(ValueError):
            TraceSpec(rack_size=0)
        with pytest.raises(ValueError):
            TraceSpec(repair_delay=-1.0)

    def test_round_trip(self):
        spec = TraceSpec(n_nodes=16, horizon=120, burst_rate=0.02,
                         rack_size=4, repair_delay=5.0, label="x",
                         lifetime=LifetimeModel(scale=300.0))
        assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_racks_layout(self):
        assert TraceSpec(n_nodes=10, rack_size=4).racks.n_racks == 3


class TestGenerateTrace:
    SPEC = TraceSpec(n_nodes=8, horizon=100, burst_rate=0.03, rack_size=4,
                     lifetime=LifetimeModel(scale=60.0))

    def test_same_seed_bit_identical(self):
        a = generate_trace(self.SPEC, seed=42)
        b = generate_trace(self.SPEC, seed=42)
        assert a == b
        assert a.to_failure_events() == b.to_failure_events()

    def test_different_seeds_differ(self):
        a = generate_trace(self.SPEC, seed=1)
        b = generate_trace(self.SPEC, seed=2)
        assert a.events != b.events

    def test_events_time_ordered_within_horizon(self):
        trace = generate_trace(self.SPEC, seed=3)
        times = [ev.time for ev in trace.events]
        assert times == sorted(times)
        assert all(0.0 < t <= self.SPEC.horizon for t in times)
        assert all(ev.cause in ("lifetime", "burst") for ev in trace.events)

    def test_burst_takes_out_whole_alive_rack(self):
        # Lifetimes far beyond the horizon: every event is a burst, and with
        # zero repair delay every rack member is alive again by the next
        # burst, so each burst's rank set is exactly one full rack.
        spec = TraceSpec(n_nodes=12, horizon=200, burst_rate=0.05,
                         rack_size=4, lifetime=LifetimeModel(scale=1e9))
        trace = generate_trace(spec, seed=5)
        racks = {tuple(r) for r in ([0, 1, 2, 3], [4, 5, 6, 7],
                                    [8, 9, 10, 11])}
        assert trace.events
        for ev in trace.events:
            assert ev.cause == "burst"
            assert tuple(sorted(ev.ranks)) in racks

    def test_repair_delay_spaces_failures(self):
        spec = TraceSpec(n_nodes=4, horizon=400, rack_size=2,
                         repair_delay=25.0, lifetime=LifetimeModel(scale=30.0))
        trace = generate_trace(spec, seed=7)
        last_seen = {}
        for ev in trace.events:
            for rank in ev.ranks:
                if rank in last_seen:
                    assert ev.time - last_seen[rank] > spec.repair_delay
                last_seen[rank] = ev.time

    def test_empirical_mean_lifetime(self):
        # Statistical sanity: each node's *first* failure time is one clean
        # draw from the lifetime distribution; over many seeds the sample
        # mean must approach the model mean (3-sigma tolerance ~ 9 %).
        spec = TraceSpec(n_nodes=16, horizon=2000,
                         lifetime=LifetimeModel(scale=50.0))
        first_failures = []
        for seed in range(40):
            trace = generate_trace(spec, seed=seed)
            seen = set()
            for ev in trace.events:
                for rank in ev.ranks:
                    if rank not in seen:
                        seen.add(rank)
                        first_failures.append(ev.time)
        assert len(first_failures) > 500
        mean = float(np.mean(first_failures))
        assert abs(mean - 50.0) < 0.15 * 50.0


class TestToFailureEvents:
    SPEC = TraceSpec(n_nodes=8, horizon=50, rack_size=4, label="mc")

    def test_resolution_validity(self):
        spec = TraceSpec(n_nodes=8, horizon=60, burst_rate=0.05, rack_size=4,
                         lifetime=LifetimeModel(scale=40.0))
        trace = generate_trace(spec, seed=11)
        events = trace.to_failure_events()
        assert events
        iterations = [ev.iteration for ev in events]
        assert iterations == sorted(iterations)
        assert len(set(iterations)) == len(iterations)
        for ev in events:
            assert 1 <= ev.iteration <= spec.horizon
            assert len(set(ev.ranks)) == len(ev.ranks)
            assert len(ev.ranks) <= spec.n_nodes - 1
            assert ev.label.startswith("trace:")

    def test_same_iteration_events_merge(self):
        trace = FailureTrace(self.SPEC, seed=0, events=(
            TraceEvent(time=2.1, ranks=(3,), cause="lifetime"),
            TraceEvent(time=2.9, ranks=(4, 5), cause="burst"),
        ))
        events = trace.to_failure_events()
        assert len(events) == 1
        assert events[0].iteration == 2
        assert events[0].ranks == (3, 4, 5)
        assert events[0].label == "mc:burst+lifetime"

    def test_duplicate_ranks_dedupe_in_time_order(self):
        trace = FailureTrace(self.SPEC, seed=0, events=(
            TraceEvent(time=3.2, ranks=(6, 1), cause="lifetime"),
            TraceEvent(time=3.8, ranks=(1, 2), cause="burst"),
        ))
        (event,) = trace.to_failure_events()
        assert event.ranks == (6, 1, 2)

    def test_rank_cap_keeps_one_survivor(self):
        spec = TraceSpec(n_nodes=4, horizon=10, rack_size=4)
        trace = FailureTrace(spec, seed=0, events=(
            TraceEvent(time=1.5, ranks=(0, 1, 2, 3), cause="burst"),
        ))
        (event,) = trace.to_failure_events()
        assert event.ranks == (0, 1, 2)

    def test_sub_iteration_times_clamp_to_one(self):
        trace = FailureTrace(self.SPEC, seed=0, events=(
            TraceEvent(time=0.4, ranks=(2,), cause="lifetime"),
        ))
        (event,) = trace.to_failure_events()
        assert event.iteration == 1

    def test_feeds_the_injector(self):
        spec = TraceSpec(n_nodes=8, horizon=40, burst_rate=0.06, rack_size=4,
                         lifetime=LifetimeModel(scale=30.0))
        trace = generate_trace(spec, seed=13)
        events = trace.to_failure_events()
        cluster = VirtualCluster(8, machine=MachineModel(jitter_rel_std=0.0))
        injector = FailureInjector(events)
        for idx, _ in injector.events_due(spec.horizon):
            injector.trigger(idx, cluster.nodes)
        assert injector.all_triggered()
