"""Tests for tools/lint_debt.py (the suppression-debt ratchet).

Contract: debt = allowlist entries + real ``# noqa`` comments per rule;
prose that merely quotes ``# noqa`` does not count; ``check`` fails on a
missing baseline, a missing rule, or any count above the committed
baseline, and notes shrunk debt; ``update`` writes the measured counts as
stable sorted JSON.
"""

import importlib.util
import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "lint_debt", REPO_ROOT / "tools" / "lint_debt.py")
lint_debt = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("lint_debt", lint_debt)
_SPEC.loader.exec_module(lint_debt)

from repro.lint.registry import rule_ids  # noqa: E402


def write_tree(tmp_path, source, rel="mod.py"):
    root = tmp_path / "pkg"
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def zero_baseline():
    from repro.lint.allowlists import ALLOWLISTS
    return {rule: {"allowlist": len(ALLOWLISTS.get(rule, ())), "noqa": 0}
            for rule in rule_ids()}


class TestRealNoqa:
    def test_plain_suppression_matches(self):
        assert lint_debt._real_noqa("x = 1  # noqa: R001") is not None
        assert lint_debt._real_noqa("x = 1  # noqa") is not None

    @pytest.mark.parametrize("line", [
        'doc = "use `# noqa: R001` sparingly"',
        "doc = '# noqa is debt'",
        "text = '``# noqa`` comments'",
    ])
    def test_quoted_prose_is_not_a_suppression(self, line):
        assert lint_debt._real_noqa(line) is None

    def test_suppression_after_prose_still_found(self):
        line = 'x = "`# noqa`"  # noqa: R002'
        match = lint_debt._real_noqa(line)
        assert match is not None
        assert match.group("codes").strip() == "R002"

    def test_clean_line(self):
        assert lint_debt._real_noqa("x = 1  # a comment") is None


class TestMeasureDebt:
    def test_counts_allowlists_and_noqa(self, tmp_path):
        root = write_tree(tmp_path, """\
            import random  # noqa: R001
            import time  # noqa: R001, R002
        """)
        debt = lint_debt.measure_debt(root)
        assert set(debt) == set(rule_ids())
        assert debt["R001"]["noqa"] == 2
        assert debt["R002"]["noqa"] == 1
        assert debt["R003"]["noqa"] == 0
        # Allowlist counts come from the pinned ALLOWLISTS, not the tree.
        from repro.lint.allowlists import ALLOWLISTS
        assert debt["R007"]["allowlist"] == len(ALLOWLISTS["R007"])

    def test_bare_noqa_counts_towards_every_rule(self, tmp_path):
        root = write_tree(tmp_path, "import random  # noqa\n")
        debt = lint_debt.measure_debt(root)
        assert all(debt[rule]["noqa"] == 1 for rule in rule_ids())

    def test_unknown_codes_ignored(self, tmp_path):
        root = write_tree(tmp_path, "x = 1  # noqa: E501\n")
        debt = lint_debt.measure_debt(root)
        assert all(debt[rule]["noqa"] == 0 for rule in rule_ids())


class TestCheck:
    def _baseline(self, tmp_path, data):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(data))
        return baseline

    def test_matching_baseline_passes(self, tmp_path, capsys):
        root = write_tree(tmp_path, "x = 1\n")
        baseline = self._baseline(tmp_path, zero_baseline())
        assert lint_debt.check(baseline, root) == 0
        out = capsys.readouterr().out
        assert "R001 noqa: 0 (baseline 0)" in out

    def test_grown_debt_fails(self, tmp_path, capsys):
        root = write_tree(tmp_path, "import random  # noqa: R001\n")
        baseline = self._baseline(tmp_path, zero_baseline())
        assert lint_debt.check(baseline, root) == 1
        captured = capsys.readouterr()
        assert "R001 noqa debt grew" in captured.err
        assert "<-- GREW" in captured.out

    def test_shrunk_debt_passes_with_note(self, tmp_path, capsys):
        root = write_tree(tmp_path, "x = 1\n")
        data = zero_baseline()
        data["R001"]["noqa"] = 3
        baseline = self._baseline(tmp_path, data)
        assert lint_debt.check(baseline, root) == 0
        assert "shrank" in capsys.readouterr().out

    def test_missing_baseline_fails(self, tmp_path, capsys):
        root = write_tree(tmp_path, "x = 1\n")
        assert lint_debt.check(tmp_path / "absent.json", root) == 1
        assert "no baseline" in capsys.readouterr().err

    def test_missing_rule_fails(self, tmp_path, capsys):
        root = write_tree(tmp_path, "x = 1\n")
        data = zero_baseline()
        del data["R010"]
        baseline = self._baseline(tmp_path, data)
        assert lint_debt.check(baseline, root) == 1
        assert "R010" in capsys.readouterr().err


class TestUpdate:
    def test_update_writes_measured_counts(self, tmp_path, capsys):
        root = write_tree(tmp_path, "import random  # noqa: R001\n")
        baseline = tmp_path / "baseline.json"
        assert lint_debt.update(baseline, root) == 0
        data = json.loads(baseline.read_text())
        assert data["R001"]["noqa"] == 1
        assert set(data) == set(rule_ids())
        assert "total debt" in capsys.readouterr().out

    def test_update_then_check_round_trips(self, tmp_path):
        root = write_tree(tmp_path, "import time  # noqa: R002\n")
        baseline = tmp_path / "baseline.json"
        lint_debt.update(baseline, root)
        assert lint_debt.check(baseline, root) == 0

    def test_update_output_is_stable(self, tmp_path):
        root = write_tree(tmp_path, "x = 1\n")
        baseline = tmp_path / "baseline.json"
        lint_debt.update(baseline, root)
        first = baseline.read_text()
        lint_debt.update(baseline, root)
        assert baseline.read_text() == first


class TestCommittedBaseline:
    def test_repo_baseline_matches_reality(self, capsys):
        """The committed .lint-debt.json agrees with the tree (CI gate)."""
        assert lint_debt.check(REPO_ROOT / ".lint-debt.json",
                               REPO_ROOT / "src" / "repro") == 0


class TestMain:
    def test_main_check(self, tmp_path):
        root = write_tree(tmp_path, "x = 1\n")
        baseline = tmp_path / "baseline.json"
        assert lint_debt.main(["update", "--baseline", str(baseline),
                               "--scan-root", str(root)]) == 0
        assert lint_debt.main(["check", "--baseline", str(baseline),
                               "--scan-root", str(root)]) == 0
