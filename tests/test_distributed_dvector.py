"""Tests for distributed vectors (node-local storage, arithmetic, failures)."""

import numpy as np
import pytest

from repro.cluster import MachineModel, NodeFailedError, VirtualCluster
from repro.distributed import BlockRowPartition, DistributedVector, swap_names


@pytest.fixture
def setup():
    cluster = VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(20, 4)
    return cluster, partition


class TestConstruction:
    def test_zeros(self, setup):
        cluster, partition = setup
        vec = DistributedVector.zeros(cluster, partition, "v")
        assert np.allclose(vec.to_global(), 0.0)

    def test_from_global_roundtrip(self, setup):
        cluster, partition = setup
        values = np.arange(20.0)
        vec = DistributedVector.from_global(cluster, partition, "v", values)
        assert np.array_equal(vec.to_global(), values)

    def test_wrong_length_rejected(self, setup):
        cluster, partition = setup
        with pytest.raises(ValueError):
            DistributedVector.from_global(cluster, partition, "v", np.ones(7))

    def test_block_shapes(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.arange(20.0))
        for rank in range(4):
            assert vec.get_block(rank).shape == (5,)

    def test_set_block_validates_shape(self, setup):
        cluster, partition = setup
        vec = DistributedVector.zeros(cluster, partition, "v")
        with pytest.raises(ValueError):
            vec.set_block(0, np.ones(3))

    def test_partition_mismatch_rejected(self, setup):
        cluster, _ = setup
        with pytest.raises(ValueError):
            DistributedVector(cluster, BlockRowPartition(20, 5), "v")


class TestArithmetic:
    def test_dot(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.arange(20.0))
        b = DistributedVector.from_global(cluster, partition, "b", np.ones(20))
        assert a.dot(b) == pytest.approx(np.arange(20.0).sum())

    def test_norm(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.full(20, 2.0))
        assert a.norm2() == pytest.approx(np.sqrt(80.0))

    def test_norm_propagates_nan(self, setup):
        """A NaN reduction (corrupted data) must surface as NaN, not read as
        a converged all-zero vector."""
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        block = a.get_block(1)
        block[0] = np.nan
        assert np.isnan(a.norm2())

    def test_norm_of_zero_vector_is_zero(self, setup):
        cluster, partition = setup
        a = DistributedVector.zeros(cluster, partition, "a")
        assert a.norm2() == 0.0

    def test_axpy(self, setup):
        cluster, partition = setup
        x = DistributedVector.from_global(cluster, partition, "x", np.arange(20.0))
        y = DistributedVector.from_global(cluster, partition, "y", np.ones(20))
        y.axpy(2.0, x)
        assert np.allclose(y.to_global(), 1.0 + 2.0 * np.arange(20.0))

    def test_aypx(self, setup):
        cluster, partition = setup
        p = DistributedVector.from_global(cluster, partition, "p", np.ones(20))
        z = DistributedVector.from_global(cluster, partition, "z", np.arange(20.0))
        p.aypx(0.5, z)  # p = z + 0.5 p
        assert np.allclose(p.to_global(), np.arange(20.0) + 0.5)

    def test_scale_and_fill(self, setup):
        cluster, partition = setup
        v = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        v.scale(3.0)
        assert np.allclose(v.to_global(), 3.0)
        v.fill(-1.0)
        assert np.allclose(v.to_global(), -1.0)

    def test_copy_is_independent(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        b = a.copy("b")
        b.scale(5.0)
        assert np.allclose(a.to_global(), 1.0)

    def test_assign(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.arange(20.0))
        b = DistributedVector.zeros(cluster, partition, "b")
        b.assign(a)
        assert np.array_equal(b.to_global(), a.to_global())

    def test_pointwise_multiply(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.arange(20.0))
        b = DistributedVector.from_global(cluster, partition, "b", np.full(20, 2.0))
        c = a.pointwise_multiply(b, "c")
        assert np.allclose(c.to_global(), 2.0 * np.arange(20.0))

    def test_operations_charge_cost(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        before = cluster.simulated_time()
        a.dot(a)
        assert cluster.simulated_time() > before

    def test_incompatible_vectors_rejected(self, setup):
        cluster, partition = setup
        other_cluster = VirtualCluster(4)
        a = DistributedVector.zeros(cluster, partition, "a")
        b = DistributedVector.zeros(other_cluster, BlockRowPartition(20, 4), "b")
        with pytest.raises(ValueError):
            a.dot(b)


class TestFailureSemantics:
    def test_block_of_failed_node_unreadable(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([2])
        with pytest.raises(NodeFailedError):
            vec.get_block(2)

    def test_to_global_raises_unless_allowed(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([1])
        with pytest.raises(NodeFailedError):
            vec.to_global()
        out = vec.to_global(allow_missing=True, fill_value=0.0)
        assert np.allclose(out[partition.slice_of(1)], 0.0)
        assert np.allclose(out[partition.slice_of(0)], 1.0)

    def test_available_and_lost_ranks(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([0, 3])
        assert vec.available_ranks() == [1, 2]
        assert vec.lost_ranks() == [0, 3]

    def test_replacement_node_has_no_block(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([1])
        cluster.replace_nodes([1])
        assert not vec.has_block(1)
        vec.set_block(1, np.zeros(5))
        assert vec.has_block(1)

    def test_dot_alive_only(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([3])
        assert vec.dot(vec, alive_only=True) == pytest.approx(15.0)


class TestMaintenance:
    def test_rename(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "old", np.ones(20))
        vec.rename("new")
        assert vec.name == "new"
        assert np.allclose(vec.to_global(), 1.0)

    def test_delete(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        vec.delete()
        assert vec.lost_ranks() == [0, 1, 2, 3]

    def test_swap_names(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        b = DistributedVector.from_global(cluster, partition, "b", np.zeros(20))
        swap_names(a, b)
        assert np.allclose(a.to_global(), 0.0)
        assert np.allclose(b.to_global(), 1.0)
