"""Tests for distributed vectors (node-local storage, arithmetic, failures)."""

import numpy as np
import pytest

from repro.cluster import MachineModel, NodeFailedError, VirtualCluster
from repro.cluster.cost_model import Phase
from repro.cluster.node import NodeStatus
from repro.distributed import BlockRowPartition, DistributedVector, swap_names


@pytest.fixture
def setup():
    cluster = VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(20, 4)
    return cluster, partition


class TestConstruction:
    def test_zeros(self, setup):
        cluster, partition = setup
        vec = DistributedVector.zeros(cluster, partition, "v")
        assert np.allclose(vec.to_global(), 0.0)

    def test_from_global_roundtrip(self, setup):
        cluster, partition = setup
        values = np.arange(20.0)
        vec = DistributedVector.from_global(cluster, partition, "v", values)
        assert np.array_equal(vec.to_global(), values)

    def test_wrong_length_rejected(self, setup):
        cluster, partition = setup
        with pytest.raises(ValueError):
            DistributedVector.from_global(cluster, partition, "v", np.ones(7))

    def test_block_shapes(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.arange(20.0))
        for rank in range(4):
            assert vec.get_block(rank).shape == (5,)

    def test_set_block_validates_shape(self, setup):
        cluster, partition = setup
        vec = DistributedVector.zeros(cluster, partition, "v")
        with pytest.raises(ValueError):
            vec.set_block(0, np.ones(3))

    def test_partition_mismatch_rejected(self, setup):
        cluster, _ = setup
        with pytest.raises(ValueError):
            DistributedVector(cluster, BlockRowPartition(20, 5), "v")


class TestArithmetic:
    def test_dot(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.arange(20.0))
        b = DistributedVector.from_global(cluster, partition, "b", np.ones(20))
        assert a.dot(b) == pytest.approx(np.arange(20.0).sum())

    def test_norm(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.full(20, 2.0))
        assert a.norm2() == pytest.approx(np.sqrt(80.0))

    def test_norm_propagates_nan(self, setup):
        """A NaN reduction (corrupted data) must surface as NaN, not read as
        a converged all-zero vector."""
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        block = a.get_block(1)
        block[0] = np.nan
        assert np.isnan(a.norm2())

    def test_norm_of_zero_vector_is_zero(self, setup):
        cluster, partition = setup
        a = DistributedVector.zeros(cluster, partition, "a")
        assert a.norm2() == 0.0

    def test_axpy(self, setup):
        cluster, partition = setup
        x = DistributedVector.from_global(cluster, partition, "x", np.arange(20.0))
        y = DistributedVector.from_global(cluster, partition, "y", np.ones(20))
        y.axpy(2.0, x)
        assert np.allclose(y.to_global(), 1.0 + 2.0 * np.arange(20.0))

    def test_aypx(self, setup):
        cluster, partition = setup
        p = DistributedVector.from_global(cluster, partition, "p", np.ones(20))
        z = DistributedVector.from_global(cluster, partition, "z", np.arange(20.0))
        p.aypx(0.5, z)  # p = z + 0.5 p
        assert np.allclose(p.to_global(), np.arange(20.0) + 0.5)

    def test_scale_and_fill(self, setup):
        cluster, partition = setup
        v = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        v.scale(3.0)
        assert np.allclose(v.to_global(), 3.0)
        v.fill(-1.0)
        assert np.allclose(v.to_global(), -1.0)

    def test_copy_is_independent(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        b = a.copy("b")
        b.scale(5.0)
        assert np.allclose(a.to_global(), 1.0)

    def test_assign(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.arange(20.0))
        b = DistributedVector.zeros(cluster, partition, "b")
        b.assign(a)
        assert np.array_equal(b.to_global(), a.to_global())

    def test_pointwise_multiply(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.arange(20.0))
        b = DistributedVector.from_global(cluster, partition, "b", np.full(20, 2.0))
        c = a.pointwise_multiply(b, "c")
        assert np.allclose(c.to_global(), 2.0 * np.arange(20.0))

    def test_operations_charge_cost(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        before = cluster.simulated_time()
        a.dot(a)
        assert cluster.simulated_time() > before

    def test_incompatible_vectors_rejected(self, setup):
        cluster, partition = setup
        other_cluster = VirtualCluster(4)
        a = DistributedVector.zeros(cluster, partition, "a")
        b = DistributedVector.zeros(other_cluster, BlockRowPartition(20, 4), "b")
        with pytest.raises(ValueError):
            a.dot(b)


class TestFailureSemantics:
    def test_block_of_failed_node_unreadable(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([2])
        with pytest.raises(NodeFailedError):
            vec.get_block(2)

    def test_to_global_raises_unless_allowed(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([1])
        with pytest.raises(NodeFailedError):
            vec.to_global()
        out = vec.to_global(allow_missing=True, fill_value=0.0)
        assert np.allclose(out[partition.slice_of(1)], 0.0)
        assert np.allclose(out[partition.slice_of(0)], 1.0)

    def test_available_and_lost_ranks(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([0, 3])
        assert vec.available_ranks() == [1, 2]
        assert vec.lost_ranks() == [0, 3]

    def test_replacement_node_has_no_block(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([1])
        cluster.replace_nodes([1])
        assert not vec.has_block(1)
        vec.set_block(1, np.zeros(5))
        assert vec.has_block(1)

    def test_dot_alive_only(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        cluster.fail_nodes([3])
        assert vec.dot(vec, alive_only=True) == pytest.approx(15.0)

    def test_dot_alive_only_charges_participating_max_block(self):
        """Regression: the local-compute charge must be paced by the slowest
        *participating* rank.  With the largest rank dead on a shrunken
        communicator, its (larger) block must not set the charge."""
        cluster = VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0))
        partition = BlockRowPartition(21, 4)  # block sizes (6, 5, 5, 5)
        vec = DistributedVector.from_global(cluster, partition, "v",
                                            np.ones(21))
        cluster.fail_nodes([0])  # rank 0 owns the largest block
        before = cluster.ledger.times.get(Phase.VECTOR_COMPUTE, 0.0)
        vec.dot(vec, alive_only=True)
        delta = cluster.ledger.times[Phase.VECTOR_COMPUTE] - before
        model = cluster.ledger.model
        assert delta == pytest.approx(model.vector_op_time(5, 2.0))
        assert delta < model.vector_op_time(6, 2.0)

    def test_dot_alive_only_charge_unchanged_when_largest_rank_alive(self):
        """Failing a non-largest rank keeps the max-block charge."""
        cluster = VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0))
        partition = BlockRowPartition(21, 4)
        vec = DistributedVector.from_global(cluster, partition, "v",
                                            np.ones(21))
        cluster.fail_nodes([2])
        before = cluster.ledger.times.get(Phase.VECTOR_COMPUTE, 0.0)
        vec.dot(vec, alive_only=True)
        delta = cluster.ledger.times[Phase.VECTOR_COMPUTE] - before
        model = cluster.ledger.model
        assert delta == pytest.approx(model.vector_op_time(6, 2.0))


class TestMaintenance:
    def test_rename(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "old", np.ones(20))
        vec.rename("new")
        assert vec.name == "new"
        assert np.allclose(vec.to_global(), 1.0)

    def test_delete(self, setup):
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "v", np.ones(20))
        vec.delete()
        assert vec.lost_ranks() == [0, 1, 2, 3]

    def test_swap_names(self, setup):
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        b = DistributedVector.from_global(cluster, partition, "b", np.zeros(20))
        swap_names(a, b)
        assert np.allclose(a.to_global(), 0.0)
        assert np.allclose(b.to_global(), 1.0)

    def test_swap_names_with_failed_then_replaced_node(self, setup):
        """A swap during a failure window stays consistent after recovery:
        the replaced node exposes no block under either name until it is
        explicitly restored, and the restored block lands under the
        post-swap association."""
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        b = DistributedVector.from_global(cluster, partition, "b", np.zeros(20))
        cluster.fail_nodes([2])
        swap_names(a, b)
        cluster.replace_nodes([2])
        assert not a.has_block(2)
        assert not b.has_block(2)
        a.set_block(2, np.full(5, 7.0))  # recovery restores a's (swapped) data
        assert np.array_equal(a.get_block(2), np.full(5, 7.0))
        assert not b.has_block(2)
        # Surviving ranks swapped normally.
        assert np.allclose(a.get_block(0), 0.0)
        assert np.allclose(b.get_block(0), 1.0)

    def test_swap_names_clears_stale_blocks_on_unscrubbed_node(self, setup):
        """Regression: a node declared failed without a memory scrub (e.g. a
        false-positive failure detection) must not expose pre-swap blocks
        under either name when it rejoins -- the swap invalidates the stale
        keys instead of silently skipping the rank."""
        cluster, partition = setup
        a = DistributedVector.from_global(cluster, partition, "a", np.ones(20))
        b = DistributedVector.from_global(cluster, partition, "b", np.zeros(20))
        node = cluster.node(2)
        # Declared dead, memory NOT wiped (fail-stop detection and scrubbing
        # are not atomic on a real machine).
        node.status = NodeStatus.FAILED
        swap_names(a, b)
        node.status = NodeStatus.ALIVE  # zombie rejoin
        assert not a.has_block(2), "stale pre-swap block exposed under 'a'"
        assert not b.has_block(2), "stale pre-swap block exposed under 'b'"

    def test_rename_clears_stale_blocks_on_unscrubbed_node(self, setup):
        """Same hazard for rename: the old key must not survive on a node
        that missed the move."""
        cluster, partition = setup
        vec = DistributedVector.from_global(cluster, partition, "old",
                                            np.ones(20))
        node = cluster.node(1)
        node.status = NodeStatus.FAILED
        vec.rename("new")
        node.status = NodeStatus.ALIVE
        assert not vec.has_block(1)
        assert ("vec", "old") not in node.memory
