"""Tests for the block Jacobi preconditioner (the paper's setting)."""

import numpy as np
import pytest

from repro.distributed import BlockRowPartition
from repro.matrices import poisson_2d
from repro.precond import BlockJacobiPreconditioner, PreconditionerForm


@pytest.fixture
def matrix():
    return poisson_2d(10)  # n = 100


@pytest.fixture
def partition():
    return BlockRowPartition(100, 4)


class TestSetupAndApply:
    def test_exact_block_solves(self, matrix, partition):
        p = BlockJacobiPreconditioner(block_solver="direct")
        p.setup(matrix, partition)
        r = np.random.default_rng(0).standard_normal(100)
        z = p.apply(r)
        # z must satisfy blkdiag(A_ii) z = r exactly
        for rank in range(4):
            start, stop = partition.range_of(rank)
            block = matrix[start:stop, start:stop]
            assert np.allclose(block @ z[start:stop], r[start:stop], atol=1e-10)

    def test_apply_block_matches_apply(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        r = np.arange(100.0)
        z = p.apply(r)
        for rank in range(4):
            start, stop = partition.range_of(rank)
            assert np.allclose(p.apply_block(rank, r[start:stop]), z[start:stop])

    def test_wrong_block_size_rejected(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        with pytest.raises(ValueError):
            p.apply_block(0, np.ones(10))

    def test_without_partition_uses_default_blocks(self, matrix):
        p = BlockJacobiPreconditioner(n_blocks=5)
        p.setup(matrix)
        assert p.block_partition.n_parts == 5

    def test_invalid_solver_rejected(self):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(block_solver="magic")

    @pytest.mark.parametrize("solver", ["ilu", "ic"])
    def test_inexact_solvers_are_good_approximations(self, matrix, partition, solver):
        p = BlockJacobiPreconditioner(block_solver=solver)
        p.setup(matrix, partition)
        exact = BlockJacobiPreconditioner(block_solver="direct")
        exact.setup(matrix, partition)
        r = np.random.default_rng(1).standard_normal(100)
        z_approx = p.apply(r)
        z_exact = exact.apply(r)
        rel = np.linalg.norm(z_approx - z_exact) / np.linalg.norm(z_exact)
        assert rel < 0.3

    def test_is_block_diagonal(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        assert p.is_block_diagonal

    def test_work_nnz(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        expected = sum(
            matrix[partition.slice_of(r), partition.slice_of(r)].nnz
            for r in range(4)
        )
        assert p.work_nnz() == expected
        assert sum(p.block_work_nnz(r) for r in range(4)) == expected


class TestEsrAccess:
    def test_form_is_forward(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        assert p.form is PreconditionerForm.FORWARD

    def test_forward_rows_are_block_diagonal(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        idx = partition.indices_of(2)
        rows = p.forward_rows(idx)
        assert rows.shape == (25, 100)
        # non-zeros only inside the owning block's columns
        start, stop = partition.range_of(2)
        cols = rows.tocoo().col
        assert np.all((cols >= start) & (cols < stop))
        # and they match A's diagonal block
        assert np.allclose(rows[:, start:stop].toarray(),
                           matrix[start:stop, start:stop].toarray())

    def test_inverse_rows_invert_blocks(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        idx = partition.indices_of(1)
        inv_rows = p.inverse_rows(idx)
        start, stop = partition.range_of(1)
        block = matrix[start:stop, start:stop].toarray()
        product = inv_rows[:, start:stop].toarray() @ block
        assert np.allclose(product, np.eye(25), atol=1e-8)

    def test_mixed_rank_rows(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        idx = np.array([0, 30, 99])
        rows = p.forward_rows(idx)
        assert rows.shape == (3, 100)

    def test_diagonal_block_accessor(self, matrix, partition):
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        start, stop = partition.range_of(3)
        assert (p.diagonal_block(3) != matrix[start:stop, start:stop]).nnz == 0


class TestAsPreconditionerInPCG:
    def test_converges_and_matches_plain_cg(self, matrix, partition):
        from repro.solvers import cg, pcg
        b = np.random.default_rng(3).standard_normal(100)
        plain = cg(matrix, b, rtol=1e-10)
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        prec = pcg(matrix, b, preconditioner=p, rtol=1e-10)
        assert prec.converged
        # The preconditioned Krylov space is different but the solution is not.
        assert np.allclose(prec.x, plain.x, atol=1e-6)
        # Block Jacobi must not blow up the iteration count on this easy problem.
        assert prec.iterations <= 2 * plain.iterations
