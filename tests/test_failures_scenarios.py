"""Tests for failure scenarios and their resolution into concrete events."""

import numpy as np
import pytest

from repro.failures import (
    PAPER_FAILURE_COUNTS,
    PAPER_PROGRESS_FRACTIONS,
    FailureLocation,
    FailureScenario,
    OverlapSpec,
    paper_scenarios,
    resolve_events,
)


class TestFailureScenario:
    def test_defaults(self):
        scenario = FailureScenario(n_failures=3)
        assert scenario.progress_fraction == 0.5
        assert scenario.location is FailureLocation.START

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            FailureScenario(n_failures=0)
        with pytest.raises(Exception):
            FailureScenario(n_failures=1, progress_fraction=1.5)

    def test_failure_iteration_scaling(self):
        scenario = FailureScenario(n_failures=1, progress_fraction=0.2)
        assert scenario.failure_iteration(100) == 20
        assert FailureScenario(1, 0.8).failure_iteration(100) == 80

    def test_failure_iteration_clamped(self):
        assert FailureScenario(1, 1.0).failure_iteration(50) == 49
        assert FailureScenario(1, 0.0).failure_iteration(50) == 0
        assert FailureScenario(1, 0.5).failure_iteration(0) == 0

    def test_start_location_ranks(self):
        scenario = FailureScenario(n_failures=3, location=FailureLocation.START)
        assert scenario.failed_ranks(16) == [0, 1, 2]

    def test_center_location_ranks(self):
        scenario = FailureScenario(n_failures=3, location=FailureLocation.CENTER)
        assert scenario.failed_ranks(16) == [8, 9, 10]

    def test_end_location_ranks(self):
        scenario = FailureScenario(n_failures=2, location=FailureLocation.END)
        assert scenario.failed_ranks(8) == [6, 7]

    def test_random_location_ranks(self):
        scenario = FailureScenario(n_failures=4, location=FailureLocation.RANDOM)
        ranks = scenario.failed_ranks(16, rng=np.random.default_rng(0))
        assert len(set(ranks)) == 4
        assert all(0 <= r < 16 for r in ranks)

    def test_random_location_default_rng_is_seeded(self):
        scenario = FailureScenario(n_failures=3, location=FailureLocation.RANDOM)
        assert scenario.failed_ranks(16) == scenario.failed_ranks(16)

    def test_random_location_round_trips_through_resolve_events(self):
        scenario = FailureScenario(n_failures=3, progress_fraction=0.5,
                                   location=FailureLocation.RANDOM)
        events_a = resolve_events(scenario, n_nodes=16,
                                  reference_iterations=40,
                                  rng=np.random.default_rng(7))
        events_b = resolve_events(scenario, n_nodes=16,
                                  reference_iterations=40,
                                  rng=np.random.default_rng(7))
        assert events_a == events_b
        (event,) = events_a
        assert event.iteration == 20
        assert len(set(event.ranks)) == 3
        assert all(0 <= r < 16 for r in event.ranks)
        assert resolve_events(scenario, n_nodes=16, reference_iterations=40,
                              rng=np.random.default_rng(8)) != events_a

    def test_too_many_failures_rejected(self):
        scenario = FailureScenario(n_failures=8)
        with pytest.raises(ValueError):
            scenario.failed_ranks(8)

    def test_describe(self):
        scenario = FailureScenario(n_failures=3, progress_fraction=0.2,
                                   location=FailureLocation.CENTER)
        text = scenario.describe()
        assert "psi=3" in text and "20%" in text and "center" in text


class TestOverlaps:
    def test_overlap_ranks_avoid_primary(self):
        scenario = FailureScenario(n_failures=2, overlaps=(OverlapSpec(1),))
        primary = scenario.failed_ranks(8)
        overlaps = scenario.overlap_ranks(8, primary)
        assert len(overlaps) == 1
        assert not set(overlaps[0]) & set(primary)

    def test_multiple_overlap_specs(self):
        scenario = FailureScenario(
            n_failures=1, overlaps=(OverlapSpec(1), OverlapSpec(2)),
        )
        primary = scenario.failed_ranks(10)
        overlaps = scenario.overlap_ranks(10, primary)
        flat = [r for group in overlaps for r in group]
        assert len(flat) == len(set(flat)) == 3

    def test_resolve_includes_overlap_events(self):
        scenario = FailureScenario(n_failures=2, progress_fraction=0.5,
                                   overlaps=(OverlapSpec(1),))
        events = resolve_events(scenario, n_nodes=8, reference_iterations=40)
        assert len(events) == 2
        assert events[0].during_recovery_of is None
        assert events[1].during_recovery_of == 0


class TestResolveEvents:
    def test_basic_resolution(self):
        scenario = FailureScenario(n_failures=3, progress_fraction=0.2,
                                   location=FailureLocation.CENTER)
        (event,) = resolve_events(scenario, n_nodes=16, reference_iterations=200)
        assert event.iteration == 40
        assert event.ranks == (8, 9, 10)

    def test_paper_grid(self):
        scenarios = paper_scenarios()
        assert len(scenarios) == len(PAPER_FAILURE_COUNTS) * len(PAPER_PROGRESS_FRACTIONS)
        counts = {s.n_failures for s in scenarios}
        assert counts == set(PAPER_FAILURE_COUNTS)
        fractions = {s.progress_fraction for s in scenarios}
        assert fractions == set(PAPER_PROGRESS_FRACTIONS)

    def test_paper_constants(self):
        assert PAPER_FAILURE_COUNTS == (1, 3, 8)
        assert PAPER_PROGRESS_FRACTIONS == (0.2, 0.5, 0.8)

    # The end-to-end "resolved events drive an actual resilient solve" case
    # moved into the systematic grid of tests/test_failure_matrix.py
    # (TestScenarioResolutionIntegration), alongside the block-solver twin.
