"""Tests for the sequential CG/PCG and BiCGSTAB reference solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import poisson_2d
from repro.precond import JacobiPreconditioner, BlockJacobiPreconditioner
from repro.solvers import bicgstab, cg, pcg, pcg_iteration_count_estimate


@pytest.fixture
def system():
    a = poisson_2d(12)
    x_exact = np.sin(np.arange(a.shape[0]) * 0.1)
    return a, a @ x_exact, x_exact


class TestPcg:
    def test_converges_to_exact_solution(self, system):
        a, b, x_exact = system
        result = pcg(a, b, rtol=1e-10)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-6)

    def test_residual_history_decreases_overall(self, system):
        a, b, _ = system
        result = pcg(a, b, rtol=1e-10)
        assert result.residual_norms[-1] < 1e-8 * result.residual_norms[0]
        assert len(result.residual_norms) == result.iterations + 1

    def test_initial_guess(self, system):
        a, b, x_exact = system
        result = pcg(a, b, x0=x_exact, rtol=1e-8)
        assert result.iterations == 0
        assert result.converged

    def test_max_iterations_respected(self, system):
        a, b, _ = system
        result = pcg(a, b, rtol=1e-14, max_iterations=3)
        assert result.iterations == 3
        assert not result.converged

    def test_callback_invoked(self, system):
        a, b, _ = system
        calls = []
        pcg(a, b, rtol=1e-6, callback=lambda j, x, r: calls.append(j))
        assert calls == list(range(1, len(calls) + 1))

    def test_preconditioner_object_and_callable(self, system):
        a, b, _ = system
        jac = JacobiPreconditioner()
        jac.setup(a)
        r1 = pcg(a, b, preconditioner=jac, rtol=1e-10)
        r2 = pcg(a, b, preconditioner=jac.apply, rtol=1e-10)
        assert r1.iterations == r2.iterations

    def test_invalid_preconditioner_type(self, system):
        a, b, _ = system
        with pytest.raises(TypeError):
            pcg(a, b, preconditioner=42)

    def test_atol_only(self, system):
        a, b, _ = system
        result = pcg(a, b, rtol=0.0, atol=1e-4)
        assert result.final_residual_norm <= 1e-4

    def test_solver_vs_true_residual_close(self, system):
        a, b, _ = system
        result = pcg(a, b, rtol=1e-10)
        assert result.final_residual_norm == pytest.approx(
            result.true_residual_norm, rel=1e-3
        )

    def test_relative_residual_deviation_small(self, system):
        a, b, _ = system
        result = pcg(a, b, rtol=1e-8)
        assert abs(result.relative_residual_deviation) < 1e-3

    def test_cg_equals_pcg_with_identity(self, system):
        a, b, _ = system
        assert cg(a, b, rtol=1e-8).iterations == pcg(a, b, rtol=1e-8).iterations

    def test_block_jacobi_reduces_iterations(self, system):
        a, b, _ = system
        plain = pcg(a, b, rtol=1e-8)
        p = BlockJacobiPreconditioner(n_blocks=4)
        p.setup(a)
        prec = pcg(a, b, preconditioner=p, rtol=1e-8)
        assert prec.iterations < plain.iterations

    def test_summary_text(self, system):
        a, b, _ = system
        assert "converged" in pcg(a, b).summary()

    def test_dense_matrix_supported(self):
        a = np.array([[4.0, 1.0], [1.0, 3.0]])
        b = np.array([1.0, 2.0])
        result = pcg(a, b, rtol=1e-12)
        assert np.allclose(a @ result.x, b)


class TestIterationEstimate:
    def test_monotone_in_condition_number(self):
        assert pcg_iteration_count_estimate(100, 1e-8) < \
            pcg_iteration_count_estimate(10_000, 1e-8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pcg_iteration_count_estimate(0.5, 1e-8)
        with pytest.raises(ValueError):
            pcg_iteration_count_estimate(10, 0.0)


class TestBicgstab:
    def test_spd_system(self, system):
        a, b, x_exact = system
        result = bicgstab(a, b, rtol=1e-10)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-5)

    def test_nonsymmetric_system(self):
        rng = np.random.default_rng(0)
        n = 80
        a = sp.csr_matrix(
            sp.diags(np.full(n, 4.0)) + sp.random(n, n, density=0.05,
                                                  random_state=0)
        )
        x_exact = rng.standard_normal(n)
        b = a @ x_exact
        result = bicgstab(a, b, rtol=1e-10)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-5)

    def test_preconditioned(self, system):
        a, b, _ = system
        p = JacobiPreconditioner()
        p.setup(a)
        result = bicgstab(a, b, preconditioner=p, rtol=1e-8)
        assert result.converged

    def test_max_iterations(self, system):
        a, b, _ = system
        result = bicgstab(a, b, rtol=1e-14, max_iterations=2)
        assert result.iterations <= 2

    def test_exact_initial_guess(self, system):
        a, b, x_exact = system
        result = bicgstab(a, b, x0=x_exact)
        assert result.converged and result.iterations == 0
