"""Tests for the redundancy-scheme registry and the RS parity scheme.

Covers the registry plumbing (names, case-insensitivity, unknown-name
errors, ``build_redundancy_scheme`` resolution), the GF(2^8) coding
(bit-exact encode/decode for any ``f <= m`` erasures), the stripe layout
invariants, the Sec. 4.2 charge-model obligations, and the end-to-end
equivalences: ``"copies"`` through the registry is bit-identical -- iterates
*and* ledger charges -- to the historical direct construction, and
``"rs_parity"`` recovery is bit-identical to the copies recovery under the
same failure schedule at strictly lower storage overhead.
"""

import numpy as np
import pytest

from repro.cluster import (
    FailureEvent,
    FailureInjector,
    MachineModel,
    Phase,
    UnrecoverableStateError,
    VirtualCluster,
)
from repro.core.api import distribute_problem
from repro.core.esr import ESRProtocol
from repro.core.placement import PLACEMENTS, RackLayout, register_placement
from repro.core.redundancy import (
    REDUNDANCY_SCHEMES,
    BackupPlacement,
    RedundancyScheme,
    RedundancySchemeBase,
    backup_targets,
    build_redundancy_scheme,
)
from repro.core.resilient_block_pcg import ResilientBlockPCG
from repro.core.resilient_pcg import ResilientPCG
from repro.core.rs_parity import RSParityScheme, gf256_mul
from repro.core.spec import ResilienceSpec, SolveSpec
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedMultiVector,
)
from repro.matrices import poisson_2d
from repro.precond import make_preconditioner


def make_context(n=147, n_nodes=6):
    """A context over a deliberately non-uniform partition (147 = 6*24+3)."""
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(n, n_nodes)
    a = poisson_2d(int(np.ceil(np.sqrt(n))))[:n, :n].tocsr()
    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    return cluster, partition, CommunicationContext.from_matrix(dist)


def fresh_problem(n_nodes=6, seed=0, grid=16):
    return distribute_problem(poisson_2d(grid), n_nodes=n_nodes, seed=seed,
                              machine=MachineModel(jitter_rel_std=0.0))


def injector(failures):
    return FailureInjector([FailureEvent(it, ranks) for it, ranks in failures])


def run_solver(scheme=None, failures=None, phi=2, n_nodes=6, **kw):
    problem = fresh_problem(n_nodes=n_nodes)
    precond = make_preconditioner("block_jacobi")
    solver = ResilientPCG(
        problem.matrix, problem.rhs, precond, phi=phi, scheme=scheme,
        failure_injector=injector(failures) if failures else None, **kw)
    return solver.solve(), solver


def run_block_solver(scheme=None, failures=None, phi=2, k=3, n_nodes=6):
    problem = fresh_problem(n_nodes=n_nodes)
    precond = make_preconditioner("block_jacobi")
    rng = np.random.RandomState(7)
    rhs = DistributedMultiVector.from_global(
        problem.cluster, problem.matrix.partition, "B",
        rng.standard_normal((problem.matrix.partition.n, k)))
    solver = ResilientBlockPCG(
        problem.matrix, rhs, precond, phi=phi, scheme=scheme,
        failure_injector=injector(failures) if failures else None)
    return solver.solve(), solver


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtin_names(self):
        assert REDUNDANCY_SCHEMES.names() == ("copies", "rs_parity")

    def test_get_is_case_insensitive(self):
        assert REDUNDANCY_SCHEMES.get("RS_Parity") is RSParityScheme
        assert REDUNDANCY_SCHEMES.get("COPIES") is RedundancyScheme

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="copies.*rs_parity"):
            REDUNDANCY_SCHEMES.get("raid6")

    def test_scheme_name_attribute_set_by_registration(self):
        assert RedundancyScheme.scheme_name == "copies"
        assert RSParityScheme.scheme_name == "rs_parity"
        assert RedundancyScheme.kind == "pattern"
        assert RSParityScheme.kind == "parity"

    def test_build_none_selects_copies(self):
        _, _, context = make_context()
        scheme = build_redundancy_scheme(None, context, 2)
        assert isinstance(scheme, RedundancyScheme)
        assert scheme.scheme_name == "copies"

    def test_build_by_name(self):
        _, _, context = make_context()
        scheme = build_redundancy_scheme("rs_parity", context, 2,
                                         options={"group_size": 3})
        assert isinstance(scheme, RSParityScheme)
        assert scheme.group_size == 3

    def test_build_passes_instances_through(self):
        _, _, context = make_context()
        instance = RSParityScheme(context, 1)
        assert build_redundancy_scheme(instance, context, 1) is instance

    def test_build_rejects_options_with_instance(self):
        _, _, context = make_context()
        instance = RSParityScheme(context, 1)
        with pytest.raises(ValueError, match="already-built"):
            build_redundancy_scheme(instance, context, 1,
                                    options={"group_size": 2})

    def test_build_rejects_unknown_options(self):
        _, _, context = make_context()
        with pytest.raises(ValueError, match="rs_parity"):
            build_redundancy_scheme("rs_parity", context, 1,
                                    options={"stripe_width": 4})
        with pytest.raises(ValueError, match="copies"):
            build_redundancy_scheme("copies", context, 1,
                                    options={"group_size": 4})


# ---------------------------------------------------------------------------
# GF(2^8) coding
# ---------------------------------------------------------------------------

class TestGF256:
    def test_multiplication_properties(self):
        rng = np.random.RandomState(0)
        for _ in range(200):
            a, b, c = (int(v) for v in rng.randint(0, 256, size=3))
            assert gf256_mul(a, b) == gf256_mul(b, a)
            assert gf256_mul(a, 1) == a
            assert gf256_mul(a, 0) == 0
            assert gf256_mul(gf256_mul(a, b), c) == gf256_mul(a, gf256_mul(b, c))

    def test_every_nonzero_element_has_inverse(self):
        from repro.core.rs_parity import _GF_INV
        for a in range(1, 256):
            assert gf256_mul(a, int(_GF_INV[a])) == 1


class TestEncodeDecode:
    def stripe_blocks(self, scheme, partition, gidx, k=None, seed=3):
        rng = np.random.RandomState(seed)
        blocks = []
        for rank in scheme.group_members(gidx):
            shape = ((partition.size_of(rank),) if k is None
                     else (partition.size_of(rank), k))
            blocks.append(rng.standard_normal(shape))
        return blocks

    @pytest.mark.parametrize("k", [None, 4])
    def test_decode_is_bit_exact_for_any_erasure_set(self, k):
        _, partition, context = make_context()
        scheme = RSParityScheme(context, 2, group_size=4)
        for gidx in range(scheme.n_groups):
            members = scheme.group_members(gidx)
            blocks = self.stripe_blocks(scheme, partition, gidx, k=k)
            rows = scheme.encode(gidx, blocks)
            assert len(rows) == 2
            # every 1- and 2-subset of members must decode bit-exactly
            import itertools
            for f in (1, min(2, len(members))):
                for lost in itertools.combinations(range(len(members)), f):
                    have = {rank: block
                            for pos, (rank, block) in
                            enumerate(zip(members, blocks))
                            if pos not in lost}
                    # any f of the m parity rows suffice
                    for row_ids in itertools.combinations(range(2), f):
                        decoded = scheme.decode(
                            gidx, have, {j: rows[j] for j in row_ids},
                            n_cols=k)
                        for pos in lost:
                            original = blocks[pos]
                            assert np.array_equal(decoded[members[pos]],
                                                  original)

    def test_decode_with_too_few_parity_rows_raises(self):
        _, partition, context = make_context()
        scheme = RSParityScheme(context, 2, group_size=4)
        blocks = self.stripe_blocks(scheme, partition, 0)
        rows = scheme.encode(0, blocks)
        members = scheme.group_members(0)
        have = {rank: block for rank, block in
                zip(members[2:], blocks[2:])}
        with pytest.raises(ValueError, match="parity rows"):
            scheme.decode(0, have, {0: rows[0]})

    def test_nothing_missing_decodes_to_empty(self):
        _, partition, context = make_context()
        scheme = RSParityScheme(context, 1, group_size=3)
        blocks = self.stripe_blocks(scheme, partition, 0)
        have = dict(zip(scheme.group_members(0), blocks))
        assert scheme.decode(0, have, {}) == {}


# ---------------------------------------------------------------------------
# stripe layout
# ---------------------------------------------------------------------------

class TestStripeLayout:
    def test_groups_partition_the_ranks(self):
        _, _, context = make_context(n_nodes=6)
        scheme = RSParityScheme(context, 2, group_size=4)
        seen = [rank for gidx in range(scheme.n_groups)
                for rank in scheme.group_members(gidx)]
        assert sorted(seen) == list(range(6))
        for rank in range(6):
            assert rank in scheme.group_members(scheme.group_of(rank))

    def test_holders_are_off_stripe_and_distinct(self):
        _, _, context = make_context(n_nodes=8)
        for phi in (1, 2, 3):
            scheme = RSParityScheme(context, phi, group_size=3,
                                    rack_size=4)
            assert scheme.verify_invariant()

    def test_group_size_clamped_to_leave_holders(self):
        _, _, context = make_context(n_nodes=6)
        scheme = RSParityScheme(context, 2, group_size=100)
        assert scheme.group_size == 4  # 6 nodes - m=2
        assert scheme.verify_invariant()

    def test_stripes_span_racks(self):
        _, _, context = make_context(n_nodes=8)
        scheme = RSParityScheme(context, 1, group_size=4, rack_size=4)
        racks = RackLayout.default(8, 4)
        # with 2 racks of 4 and g=4, each stripe touches both racks
        for gidx in range(scheme.n_groups):
            touched = {racks.rack_of(r) for r in scheme.group_members(gidx)}
            assert len(touched) == 2

    def test_phi_at_least_n_nodes_rejected(self):
        _, _, context = make_context(n_nodes=6)
        with pytest.raises(ValueError, match="phi=6"):
            RSParityScheme(context, 6)

    def test_bad_group_size_rejected(self):
        _, _, context = make_context(n_nodes=6)
        with pytest.raises(ValueError, match="group_size"):
            RSParityScheme(context, 1, group_size=0)

    def test_seeded_rng_makes_random_placement_deterministic(self):
        _, _, context = make_context(n_nodes=8)
        layouts = []
        for _ in range(2):
            scheme = RSParityScheme(context, 2, placement="random",
                                    rng=np.random.default_rng(42))
            layouts.append([scheme.group_holders(g)
                            for g in range(scheme.n_groups)])
        assert layouts[0] == layouts[1]


# ---------------------------------------------------------------------------
# charge model (Sec. 4.2 obligations)
# ---------------------------------------------------------------------------

class TestChargeModel:
    def test_round_count_equals_m(self):
        cluster, _, context = make_context()
        for phi in (0, 1, 3):
            scheme = RSParityScheme(context, phi)
            rounds = scheme.round_overhead_times(cluster.topology,
                                                 cluster.machine)
            assert len(rounds) == phi
            assert all(t > 0 for t in rounds)

    @pytest.mark.parametrize("n_cols", [1, 4])
    def test_sandwich_bounds(self, n_cols):
        cluster, _, context = make_context()
        scheme = RSParityScheme(context, 2)
        lower, upper = scheme.overhead_bounds(cluster.topology,
                                              cluster.machine, n_cols=n_cols)
        total = scheme.per_iteration_overhead_time(
            cluster.topology, cluster.machine, n_cols=n_cols)
        assert lower - 1e-15 <= total <= upper + 1e-15

    def test_volume_terms_scale_with_columns(self):
        cluster, _, context = make_context()
        scheme = RSParityScheme(context, 2)
        msgs1, elems1 = scheme.extra_traffic_per_iteration(n_cols=1)
        msgs4, elems4 = scheme.extra_traffic_per_iteration(n_cols=4)
        assert msgs4 == msgs1           # message count is k-independent
        assert elems4 == 4 * elems1     # volume scales with k
        assert scheme.redundant_elements_per_generation(n_cols=4) == \
            4 * scheme.redundant_elements_per_generation(n_cols=1)

    def test_storage_and_traffic_beat_copies_at_equal_tolerance(self):
        """The headline economics: m/g overhead instead of phi full copies."""
        _, partition, context = make_context()
        phi = 2
        rs = RSParityScheme(context, phi, group_size=4)
        copies = RedundancyScheme(context, phi)
        # copies stores >= phi * n elements; rs stores n + m * sum(padded)
        assert copies.redundant_elements_per_generation() >= phi * partition.n
        rs_extra = rs.redundant_elements_per_generation() - partition.n
        copies_extra = copies.redundant_elements_per_generation()
        assert rs_extra < copies_extra
        _, rs_elems = rs.extra_traffic_per_iteration()
        _, copies_elems = copies.extra_traffic_per_iteration()
        assert rs_elems < copies_elems


# ---------------------------------------------------------------------------
# copies through the registry: bit-identical to the historical construction
# ---------------------------------------------------------------------------

class TestCopiesBitIdentity:
    @pytest.mark.parametrize("failures", [None, [(10, [2])], [(10, [1, 4])]])
    def test_resilient_pcg_registry_copies_identical(self, failures):
        default, s0 = run_solver(None, failures=failures)
        named, s1 = run_solver("copies", failures=failures)
        assert np.array_equal(default.x, named.x)
        assert default.iterations == named.iterations
        assert default.simulated_time == named.simulated_time
        assert s0.cluster.ledger.breakdown() == s1.cluster.ledger.breakdown()
        assert dict(s0.cluster.ledger.messages) == \
            dict(s1.cluster.ledger.messages)

    def test_resilient_block_pcg_registry_copies_identical(self):
        default, s0 = run_block_solver(None, failures=[(10, [2])])
        named, s1 = run_block_solver("copies", failures=[(10, [2])])
        assert np.array_equal(default.x, named.x)
        assert default.simulated_time == named.simulated_time
        assert s0.cluster.ledger.breakdown() == s1.cluster.ledger.breakdown()

    def test_prebuilt_instance_path_identical(self):
        """Solver paths hand a pre-built scheme to the protocol unchanged."""
        result, solver = run_solver("copies")
        assert solver.esr.scheme is solver.scheme
        assert result.info["scheme"] == "copies"


# ---------------------------------------------------------------------------
# rs_parity end-to-end recovery
# ---------------------------------------------------------------------------

class TestRSParityRecovery:
    def test_failure_free_iterates_identical_to_copies(self):
        base, _ = run_solver(None)
        rs, _ = run_solver("rs_parity")
        assert np.array_equal(base.x, rs.x)
        assert base.iterations == rs.iterations
        assert rs.info["scheme"] == "rs_parity"

    @pytest.mark.parametrize("failures", [
        [(10, [2])],            # single failure
        [(10, [0, 3])],         # m=2 simultaneous failures, same stripe
        [(8, [0]), (15, [3])],  # sequential hits on one stripe (heal path)
        [(7, [5]), (7, [1])],   # same-iteration events, distinct stripes
    ])
    def test_recovery_bit_identical_to_copies_recovery(self, failures):
        copies, _ = run_solver("copies", failures=failures)
        rs, solver = run_solver("rs_parity", failures=failures)
        assert np.array_equal(copies.x, rs.x)
        assert copies.iterations == rs.iterations
        assert solver.recovery_reports
        assert solver.cluster.ledger.total_time([Phase.RECOVERY_COMM]) > 0

    def test_block_solver_recovery_bit_identical_to_copies(self):
        copies, _ = run_block_solver("copies", failures=[(10, [0, 3])])
        rs, _ = run_block_solver("rs_parity", failures=[(10, [0, 3])])
        assert np.array_equal(copies.x, rs.x)

    def test_recovered_solution_matches_failure_free_solve(self):
        base, _ = run_solver(None)
        rs, _ = run_solver("rs_parity", failures=[(10, [0, 3])])
        assert np.allclose(base.x, rs.x, rtol=1e-12, atol=1e-13)

    def test_more_failures_than_m_unrecoverable(self):
        # stripe (0,3,1,4) loses 3 members with m=2 parity rows
        with pytest.raises(UnrecoverableStateError, match="parity rows"):
            run_solver("rs_parity", failures=[(10, [0, 3, 1])], phi=2)

    def test_cheaper_per_iteration_than_copies(self):
        copies, _ = run_solver("copies", phi=2)
        rs, _ = run_solver("rs_parity", phi=2)
        assert rs.info["redundancy"]["per_iteration_time"] < \
            copies.info["redundancy"]["per_iteration_time"]


# ---------------------------------------------------------------------------
# ESR protocol integration (satellite: rack_size / rng forwarding)
# ---------------------------------------------------------------------------

class TestProtocolSchemeForwarding:
    def test_protocol_forwards_rack_size(self):
        """Regression: the default-built scheme must see the rack layout."""
        cluster, _, context = make_context(n_nodes=8)
        esr = ESRProtocol(cluster, context, 1, placement="rack_aware",
                          rack_size=2)
        assert esr.scheme.racks.rack_size == 2
        esr_default = ESRProtocol(cluster, context, 1,
                                  placement="rack_aware")
        assert esr_default.scheme.racks.rack_size == \
            RackLayout.default(8, None).rack_size

    def test_protocol_forwards_rng(self):
        """Regression: a seeded rng must reach the random placement."""
        cluster, _, context = make_context(n_nodes=8)
        patterns = []
        for _ in range(2):
            esr = ESRProtocol(cluster, context, 2, placement="random",
                              rng=np.random.default_rng(99))
            patterns.append(sorted(esr.scheme.held_pattern()))
        assert patterns[0] == patterns[1]

    def test_protocol_forwards_scheme_options(self):
        cluster, _, context = make_context(n_nodes=6)
        esr = ESRProtocol(cluster, context, 1, scheme="rs_parity",
                          scheme_options={"group_size": 2})
        assert esr.scheme.group_size == 2

    def test_protocol_rejects_phi_mismatch(self):
        cluster, _, context = make_context(n_nodes=6)
        scheme = RSParityScheme(context, 2)
        with pytest.raises(ValueError, match="does not match"):
            ESRProtocol(cluster, context, 1, scheme=scheme)


# ---------------------------------------------------------------------------
# broken registered placements fail loudly (satellite: ValueError, no assert)
# ---------------------------------------------------------------------------

class TestBrokenPlacementDiagnostics:
    @pytest.fixture
    def broken_placement(self):
        @register_placement("broken_test_only", "returns duplicate targets")
        def _broken(owner, phi, n_nodes, *, racks=None, rng=None):
            return [(owner + 1) % n_nodes] * phi

        try:
            yield "broken_test_only"
        finally:
            PLACEMENTS._strategies.pop("broken_test_only", None)

    def test_invalid_targets_raise_value_error_naming_strategy(
            self, broken_placement):
        with pytest.raises(ValueError) as excinfo:
            backup_targets(0, 2, 6, placement=broken_placement)
        message = str(excinfo.value)
        assert "broken_test_only" in message
        assert "distinct" in message

    def test_scheme_construction_surfaces_the_error(self, broken_placement):
        _, _, context = make_context(n_nodes=6)
        with pytest.raises(ValueError, match="broken_test_only"):
            RedundancyScheme(context, 2, placement=broken_placement)


# ---------------------------------------------------------------------------
# spec integration
# ---------------------------------------------------------------------------

class TestSpecIntegration:
    def test_solve_spec_routes_scheme_to_solver(self):
        import json

        from repro.core.api import solve
        problem = fresh_problem()
        spec = SolveSpec(
            solver="resilient_pcg", preconditioner="block_jacobi",
            resilience=ResilienceSpec(phi=2, scheme="rs_parity",
                                      scheme_options={"group_size": 3},
                                      failures=((10, (2,)),)))
        rebuilt = SolveSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        result = solve(problem, spec=rebuilt)
        assert result.converged
        assert result.info["scheme"] == "rs_parity"

    def test_unknown_scheme_rejected_at_spec_validation(self):
        with pytest.raises(ValueError, match="redundancy scheme"):
            ResilienceSpec(scheme="raid6")
