"""Tests for interconnect topologies."""

import pytest

from repro.cluster.network import (
    FatTreeTopology,
    TorusTopology,
    UniformTopology,
    default_topology,
)


class TestUniformTopology:
    def test_constant_latency(self):
        topo = UniformTopology(8, latency=3e-6)
        assert topo.latency(0, 5) == pytest.approx(3e-6)
        assert topo.latency(7, 1) == pytest.approx(3e-6)

    def test_zero_self_latency(self):
        topo = UniformTopology(4)
        assert topo.latency(2, 2) == 0.0

    def test_out_of_range_rejected(self):
        topo = UniformTopology(4)
        with pytest.raises(ValueError):
            topo.latency(0, 4)

    def test_max_latency(self):
        topo = UniformTopology(4, latency=1e-6)
        assert topo.max_latency() == pytest.approx(1e-6)

    def test_single_node(self):
        assert UniformTopology(1).max_latency() == 0.0

    def test_invalid_latency(self):
        with pytest.raises(Exception):
            UniformTopology(4, latency=0.0)


class TestFatTreeTopology:
    def test_intra_vs_inter_switch(self):
        topo = FatTreeTopology(16, nodes_per_switch=4,
                               latency_intra=1e-6, latency_inter=3e-6)
        assert topo.latency(0, 3) == pytest.approx(1e-6)   # same switch
        assert topo.latency(0, 4) == pytest.approx(3e-6)   # across switches

    def test_switch_assignment(self):
        topo = FatTreeTopology(16, nodes_per_switch=4)
        assert topo.switch_of(0) == 0
        assert topo.switch_of(5) == 1
        assert topo.switch_of(15) == 3

    def test_latency_matrix_symmetry(self):
        topo = FatTreeTopology(8, nodes_per_switch=4)
        mat = topo.latency_matrix()
        assert (mat == mat.T).all()
        assert (mat.diagonal() == 0).all()

    def test_inter_must_not_be_smaller(self):
        with pytest.raises(ValueError):
            FatTreeTopology(8, latency_intra=5e-6, latency_inter=1e-6)

    def test_neighbouring_ranks_usually_share_switch(self):
        topo = FatTreeTopology(32, nodes_per_switch=8)
        same_switch = sum(
            topo.switch_of(r) == topo.switch_of(r + 1) for r in range(31)
        )
        assert same_switch >= 24  # only switch boundaries differ


class TestTorusTopology:
    def test_ring_distance(self):
        topo = TorusTopology(10)
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 9) == 1      # wraps around
        assert topo.hops(0, 5) == 5

    def test_latency_grows_with_distance(self):
        topo = TorusTopology(16)
        assert topo.latency(0, 8) > topo.latency(0, 1)

    def test_max_latency_at_half_ring(self):
        topo = TorusTopology(8, per_hop_latency=1e-6, base_latency=1e-6)
        assert topo.max_latency() == pytest.approx(1e-6 + 4e-6)


class TestDefaultTopology:
    def test_returns_fat_tree(self):
        topo = default_topology(16)
        assert isinstance(topo, FatTreeTopology)
        assert topo.n_nodes == 16

    def test_small_cluster(self):
        topo = default_topology(4)
        assert topo.n_nodes == 4

    def test_custom_latencies_forwarded(self):
        topo = default_topology(16, 1e-6, 9e-6)
        assert topo.latency_intra == pytest.approx(1e-6)
        assert topo.latency_inter == pytest.approx(9e-6)
