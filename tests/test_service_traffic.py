"""Seeded synthetic traffic generation (R001: fully seed-determined)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import TrafficSpec, generate_traffic


class TestTrafficSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_requests"):
            TrafficSpec(n_requests=-1)
        with pytest.raises(ValueError, match="matrix_ids"):
            TrafficSpec(matrix_ids=())
        with pytest.raises(ValueError, match="tenants"):
            TrafficSpec(tenants=())
        with pytest.raises(ValueError, match="n_modes"):
            TrafficSpec(n_modes=-2)

    def test_json_round_trip(self):
        spec = TrafficSpec(n_requests=5, matrix_ids=("a", "b"),
                           tenants=("x",), rate_per_s=10.0, n_modes=2,
                           mode_noise=0.05)
        restored = TrafficSpec.from_dict(json.loads(json.dumps(
            spec.to_dict())))
        assert restored == spec


class TestGenerateTraffic:
    SIZES = {"a": 16, "b": 24}

    def test_same_seed_same_trace(self):
        spec = TrafficSpec(n_requests=20, matrix_ids=("a", "b"),
                           tenants=("t0", "t1"), rate_per_s=100.0, n_modes=2)
        first = generate_traffic(spec, self.SIZES, seed=3)
        second = generate_traffic(spec, self.SIZES, seed=3)
        assert len(first) == len(second) == 20
        for lhs, rhs in zip(first, second):
            assert lhs.matrix_id == rhs.matrix_id
            assert lhs.tenant == rhs.tenant
            assert lhs.arrival_s == rhs.arrival_s
            assert np.array_equal(lhs.rhs, rhs.rhs)

    def test_different_seed_different_payloads(self):
        spec = TrafficSpec(n_requests=8, matrix_ids=("a",))
        first = generate_traffic(spec, self.SIZES, seed=1)
        second = generate_traffic(spec, self.SIZES, seed=2)
        assert not np.array_equal(first[0].rhs, second[0].rhs)

    def test_rhs_sizes_match_targets(self):
        spec = TrafficSpec(n_requests=30, matrix_ids=("a", "b"))
        for req in generate_traffic(spec, self.SIZES, seed=0):
            assert req.rhs.shape == (self.SIZES[req.matrix_id],)
            assert req.rhs.dtype == np.float64

    def test_zero_rate_means_simultaneous_arrivals(self):
        spec = TrafficSpec(n_requests=5, matrix_ids=("a",), rate_per_s=0.0)
        trace = generate_traffic(spec, self.SIZES, seed=0)
        assert [req.arrival_s for req in trace] == [0.0] * 5

    def test_positive_rate_yields_increasing_arrivals(self):
        spec = TrafficSpec(n_requests=10, matrix_ids=("a",), rate_per_s=50.0)
        arrivals = [req.arrival_s
                    for req in generate_traffic(spec, self.SIZES, seed=0)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_modes_cluster_payloads(self):
        spec = TrafficSpec(n_requests=40, matrix_ids=("a",), n_modes=2,
                           mode_noise=1e-6)
        trace = generate_traffic(spec, self.SIZES, seed=5)
        # With near-zero noise the payloads collapse onto the two modes.
        unique = []
        for req in trace:
            if not any(np.allclose(req.rhs, u, atol=1e-4) for u in unique):
                unique.append(req.rhs)
        assert len(unique) == 2

    def test_missing_size_raises(self):
        spec = TrafficSpec(n_requests=1, matrix_ids=("ghost",))
        with pytest.raises(ValueError, match="ghost"):
            generate_traffic(spec, self.SIZES, seed=0)

    def test_indices_are_sequential(self):
        spec = TrafficSpec(n_requests=6, matrix_ids=("a",))
        trace = generate_traffic(spec, self.SIZES, seed=0)
        assert [req.index for req in trace] == list(range(6))
