"""Tests for the distributed PCG solver (reference runs)."""

import numpy as np
import pytest

from repro.cluster import MachineModel, Phase
from repro.core.api import distribute_problem, reference_solve
from repro.core.pcg import DistributedPCG
from repro.matrices import poisson_2d, graph_laplacian_spd
from repro.precond import make_preconditioner
from repro.solvers import pcg


@pytest.fixture
def problem():
    return distribute_problem(poisson_2d(20), n_nodes=5, seed=0,
                              machine=MachineModel(jitter_rel_std=0.0))


class TestNumerics:
    def test_converges(self, problem):
        result = reference_solve(problem, preconditioner="block_jacobi")
        assert result.converged
        assert result.final_residual_norm <= 1e-8 * result.residual_norms[0]

    def test_solution_solves_system(self, problem):
        result = reference_solve(problem, preconditioner="block_jacobi")
        a = problem.matrix.to_global()
        b = problem.rhs.to_global()
        assert np.linalg.norm(b - a @ result.x) / np.linalg.norm(b) < 1e-7

    def test_matches_sequential_pcg_iterate_for_iterate(self):
        """The distributed solver must replicate the sequential recurrence."""
        a = poisson_2d(14)
        b = np.sin(np.arange(a.shape[0]))
        problem = distribute_problem(a, b, n_nodes=4, seed=0,
                                     machine=MachineModel(jitter_rel_std=0.0))
        precond = make_preconditioner("jacobi")
        precond.setup(a, problem.partition)
        dist_solver = DistributedPCG(problem.matrix, problem.rhs, precond,
                                     rtol=1e-8, context=problem.context)
        dist_result = dist_solver.solve()

        seq_precond = make_preconditioner("jacobi")
        seq_precond.setup(a)
        seq_result = pcg(a, b, preconditioner=seq_precond, rtol=1e-8)

        assert dist_result.iterations == seq_result.iterations
        assert np.allclose(dist_result.residual_norms, seq_result.residual_norms,
                           rtol=1e-10)
        assert np.allclose(dist_result.x, seq_result.x, rtol=1e-10, atol=1e-12)

    def test_identity_preconditioner(self, problem):
        result = reference_solve(problem, preconditioner="identity")
        assert result.converged

    def test_custom_rhs(self):
        a = poisson_2d(12)
        rhs = np.random.default_rng(0).standard_normal(a.shape[0])
        problem = distribute_problem(a, rhs, n_nodes=4)
        result = reference_solve(problem, preconditioner="block_jacobi")
        assert np.allclose(a @ result.x, rhs, atol=1e-5)

    def test_irregular_matrix(self):
        a = graph_laplacian_spd(200, avg_degree=5, seed=0)
        problem = distribute_problem(a, n_nodes=4)
        result = reference_solve(problem, preconditioner="block_jacobi")
        assert result.converged

    def test_max_iterations_cap(self, problem):
        result = reference_solve(problem, preconditioner="identity",
                                 max_iterations=2)
        assert result.iterations == 2
        assert not result.converged

    def test_initial_guess(self, problem):
        precond = make_preconditioner("block_jacobi")
        solver = DistributedPCG(problem.matrix, problem.rhs, precond,
                                context=problem.context)
        exact = np.ones(problem.n)  # rhs was A @ ones
        result = solver.solve(x0=exact)
        assert result.iterations == 0
        assert result.converged

    def test_non_block_diagonal_preconditioner_rejected(self, problem):
        ssor = make_preconditioner("ssor")
        ssor.setup(problem.matrix.to_global(), problem.partition)
        with pytest.raises(ValueError):
            DistributedPCG(problem.matrix, problem.rhs, ssor)


class TestCostAccounting:
    def test_simulated_time_positive_and_decomposed(self, problem):
        result = reference_solve(problem, preconditioner="block_jacobi")
        assert result.simulated_time > 0
        assert result.simulated_recovery_time == 0.0
        assert result.simulated_iteration_time == pytest.approx(
            result.simulated_time, rel=1e-12
        )
        assert Phase.SPMV_COMPUTE in result.time_breakdown
        assert Phase.ALLREDUCE_COMM in result.time_breakdown

    def test_no_redundancy_phase_for_reference(self, problem):
        result = reference_solve(problem, preconditioner="block_jacobi")
        assert result.time_breakdown.get(Phase.REDUNDANCY_COMM, 0.0) == 0.0

    def test_breakdown_sums_to_total(self, problem):
        result = reference_solve(problem, preconditioner="block_jacobi")
        assert sum(result.time_breakdown.values()) == pytest.approx(
            result.simulated_time, rel=1e-9
        )

    def test_second_solve_reports_only_its_own_phases(self, problem):
        """The breakdown of a later solve on the same cluster must not carry
        stale zero-delta phases charged by an earlier solve."""
        from repro.core.api import resilient_solve

        first = resilient_solve(problem, phi=2, preconditioner="block_jacobi")
        assert first.time_breakdown.get(Phase.REDUNDANCY_COMM, 0.0) > 0
        second = reference_solve(problem, preconditioner="block_jacobi")
        assert Phase.REDUNDANCY_COMM not in second.time_breakdown
        assert all(value > 0 for value in second.time_breakdown.values())
        assert sum(second.time_breakdown.values()) == pytest.approx(
            second.simulated_time, rel=1e-9
        )

    def test_more_nodes_more_collective_cost_per_iteration(self):
        a = poisson_2d(20)
        times = {}
        for n_nodes in (2, 8):
            problem = distribute_problem(a, n_nodes=n_nodes,
                                         machine=MachineModel(jitter_rel_std=0.0))
            result = reference_solve(problem, preconditioner="jacobi")
            times[n_nodes] = result.time_breakdown[Phase.ALLREDUCE_COMM] \
                / result.iterations
        assert times[8] > times[2]

    def test_result_info_fields(self, problem):
        result = reference_solve(problem, preconditioner="block_jacobi")
        assert result.info["n_nodes"] == 5
        assert result.info["preconditioner"] == "block_jacobi"
        assert result.n_failures_recovered == 0
