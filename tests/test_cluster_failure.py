"""Tests for failure events, the injector and the ULFM-like runtime."""

import pytest

from repro.cluster import FailureEvent, FailureInjector, NodeStatus, VirtualCluster
from repro.cluster.failure import UlfmRuntime
from repro.utils.validation import ValidationError


@pytest.fixture
def cluster():
    return VirtualCluster(6)


class TestFailureEvent:
    def test_basic(self):
        event = FailureEvent(iteration=10, ranks=(1, 2))
        assert event.n_failures == 2

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValidationError):
            FailureEvent(iteration=-1, ranks=(0,))

    def test_empty_ranks_rejected(self):
        with pytest.raises(ValidationError):
            FailureEvent(iteration=0, ranks=())

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValidationError):
            FailureEvent(iteration=0, ranks=(1, 1))

    def test_overlap_marker(self):
        event = FailureEvent(iteration=5, ranks=(3,), during_recovery_of=0)
        assert event.during_recovery_of == 0


class TestFailureInjector:
    def test_events_due_by_iteration(self):
        injector = FailureInjector([
            FailureEvent(10, (0,)), FailureEvent(20, (1,)),
        ])
        assert len(injector.events_due(5)) == 0
        assert len(injector.events_due(10)) == 1
        assert len(injector.events_due(25)) == 2

    def test_trigger_fails_nodes(self, cluster):
        injector = FailureInjector([FailureEvent(0, (2, 4))])
        (idx, _event), = injector.events_due(0)
        injector.trigger(idx, cluster.nodes)
        assert cluster.node(2).is_failed and cluster.node(4).is_failed
        assert cluster.node(0).is_alive

    def test_trigger_skips_already_failed_ranks(self, cluster):
        # Stochastic schedules can name a rank twice before a recovery
        # replaced it; the second strike must be a deterministic no-op for
        # that rank (one failure episode, one memory wipe), not a crash or
        # a double-kill.
        injector = FailureInjector([
            FailureEvent(0, (2, 4)), FailureEvent(1, (4, 5)),
        ])
        injector.trigger(0, cluster.nodes)
        assert cluster.node(4).failure_count == 1
        event = injector.trigger(1, cluster.nodes)
        assert event.ranks == (4, 5)
        assert cluster.node(4).is_failed and cluster.node(5).is_failed
        assert cluster.node(4).failure_count == 1
        assert cluster.node(5).failure_count == 1
        assert injector.all_triggered()

    def test_trigger_twice_rejected(self, cluster):
        injector = FailureInjector([FailureEvent(0, (1,))])
        injector.trigger(0, cluster.nodes)
        with pytest.raises(ValidationError):
            injector.trigger(0, cluster.nodes)

    def test_triggered_events_not_due_again(self, cluster):
        injector = FailureInjector([FailureEvent(0, (1,))])
        injector.trigger(0, cluster.nodes)
        assert injector.events_due(100) == []
        assert injector.all_triggered()

    def test_overlapping_events_separate_queue(self):
        injector = FailureInjector([
            FailureEvent(10, (0,)),
            FailureEvent(10, (1,), during_recovery_of=0),
        ])
        assert len(injector.events_due(10, overlapping=False)) == 1
        assert len(injector.events_due(10, overlapping=True)) == 1

    def test_max_simultaneous(self):
        injector = FailureInjector([
            FailureEvent(10, (0, 1, 2)), FailureEvent(20, (3,)),
        ])
        assert injector.max_simultaneous_failures() == 3

    def test_add_event(self):
        injector = FailureInjector()
        injector.add_event(FailureEvent(5, (0,)))
        assert len(injector.pending_events()) == 1

    def test_out_of_range_rank_rejected(self, cluster):
        injector = FailureInjector([FailureEvent(0, (99,))])
        with pytest.raises(ValidationError):
            injector.trigger(0, cluster.nodes)


class TestUlfmRuntime:
    def test_detect_failures(self, cluster):
        runtime = UlfmRuntime(cluster.nodes)
        assert runtime.detect_failures() == []
        cluster.fail_nodes([1, 3])
        assert runtime.detect_failures() == [1, 3]
        # already reported -> not reported again
        assert runtime.detect_failures() == []

    def test_notify_survivors(self, cluster):
        runtime = UlfmRuntime(cluster.nodes)
        cluster.fail_nodes([2])
        notified = runtime.notify_survivors([2])
        assert 2 not in notified
        assert all(v == [2] for v in notified.values())

    def test_provide_replacements(self, cluster):
        runtime = cluster.ulfm
        cluster.fail_nodes([1])
        runtime.detect_failures()
        replaced = runtime.provide_replacements([1])
        assert replaced == [1]
        assert cluster.node(1).status is NodeStatus.REPLACEMENT
        assert runtime.known_failed() == []

    def test_replace_alive_node_rejected(self, cluster):
        with pytest.raises(ValidationError):
            cluster.ulfm.provide_replacements([0])

    def test_recovery_records(self, cluster):
        record = cluster.ulfm.begin_recovery(42, [1, 2])
        record.simulated_time = 0.5
        assert cluster.ulfm.total_recoveries() == 1
        assert cluster.ulfm.recoveries[0].failed_ranks == [1, 2]


class TestClusterFacade:
    def test_fail_and_replace(self, cluster):
        cluster.fail_nodes([0, 5])
        assert cluster.failed_ranks() == [0, 5]
        assert cluster.any_failed
        cluster.replace_nodes([0, 5])
        assert cluster.failed_ranks() == []

    def test_describe(self, cluster):
        assert "N=6" in cluster.describe()

    def test_invalid_rank(self, cluster):
        with pytest.raises(Exception):
            cluster.node(17)

    def test_simulated_time_accumulates(self, cluster):
        assert cluster.simulated_time() == 0.0
        cluster.comm.barrier()
        assert cluster.simulated_time() > 0.0
        cluster.reset_costs()
        assert cluster.simulated_time() == 0.0

    def test_topology_size_mismatch_rejected(self):
        from repro.cluster.network import UniformTopology
        with pytest.raises(Exception):
            VirtualCluster(4, topology=UniformTopology(8))
