"""Tests for SSOR, split-Cholesky preconditioners and the IC(0) factorisation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import poisson_2d
from repro.precond import (
    PreconditionerForm,
    SplitCholeskyPreconditioner,
    SSORPreconditioner,
    factorization_residual,
    ic0,
    ic0_solve,
)
from repro.precond.ichol import FactorizationError
from repro.solvers import cg, pcg


@pytest.fixture
def matrix():
    return poisson_2d(8)


class TestIc0:
    def test_factor_is_lower_triangular(self, matrix):
        factor = ic0(matrix)
        assert (sp.triu(factor, k=1)).nnz == 0

    def test_pattern_matches_lower_triangle(self, matrix):
        factor = ic0(matrix)
        lower = sp.tril(matrix)
        assert factor.nnz == lower.nnz

    def test_exact_for_tridiagonal(self):
        # IC(0) of a tridiagonal SPD matrix is the exact Cholesky factor.
        from repro.matrices import poisson_1d
        a = poisson_1d(20)
        factor = ic0(a)
        assert factorization_residual(a, factor) < 1e-12

    def test_reasonable_approximation_2d(self, matrix):
        factor = ic0(matrix)
        assert factorization_residual(matrix, factor) < 0.3

    def test_solve(self, matrix):
        factor = ic0(matrix)
        rhs = np.ones(matrix.shape[0])
        x = ic0_solve(factor, rhs)
        assert np.allclose(factor @ (factor.T @ x), rhs, atol=1e-10)

    def test_diagonal_shift_recovery(self):
        # An indefinite-looking perturbation forces the shifted retry path.
        a = poisson_2d(6).tolil()
        a[0, 0] = 1e-8
        factor = ic0(sp.csr_matrix(a))
        assert np.isfinite(factor.data).all()

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            ic0(sp.csr_matrix(np.ones((3, 4))))

    def test_missing_diagonal_detected(self):
        a = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 0.0]]))
        a.eliminate_zeros()
        with pytest.raises(FactorizationError):
            ic0(a, max_shift_attempts=0)


class TestSSOR:
    def test_apply_matches_explicit_inverse(self, matrix):
        p = SSORPreconditioner(omega=1.2)
        p.setup(matrix)
        r = np.random.default_rng(0).standard_normal(matrix.shape[0])
        z = p.apply(r)
        m = p.forward_matrix().toarray()
        assert np.allclose(m @ z, r, atol=1e-8)

    def test_invalid_omega(self):
        with pytest.raises(ValueError):
            SSORPreconditioner(omega=2.5)

    def test_accelerates_cg(self, matrix):
        b = np.random.default_rng(4).standard_normal(matrix.shape[0])
        plain = cg(matrix, b, rtol=1e-10)
        p = SSORPreconditioner(omega=1.0)
        p.setup(matrix)
        prec = pcg(matrix, b, preconditioner=p, rtol=1e-10)
        assert prec.converged
        assert prec.iterations < plain.iterations
        assert np.allclose(prec.x, plain.x, atol=1e-6)

    def test_forward_rows(self, matrix):
        p = SSORPreconditioner()
        p.setup(matrix)
        rows = p.forward_rows(np.array([0, 1]))
        assert rows.shape == (2, matrix.shape[0])

    def test_form(self, matrix):
        p = SSORPreconditioner()
        p.setup(matrix)
        assert p.form is PreconditionerForm.FORWARD

    def test_not_block_diagonal(self, matrix):
        p = SSORPreconditioner()
        p.setup(matrix)
        assert not p.is_block_diagonal


class TestSplitCholesky:
    def test_apply_consistent_with_factor(self, matrix):
        p = SplitCholeskyPreconditioner()
        p.setup(matrix)
        r = np.random.default_rng(1).standard_normal(matrix.shape[0])
        z = p.apply(r)
        factor = p.split_factor()
        assert np.allclose(factor @ (factor.T @ z), r, atol=1e-8)

    def test_form_is_split(self, matrix):
        p = SplitCholeskyPreconditioner()
        p.setup(matrix)
        assert p.form is PreconditionerForm.SPLIT

    def test_accelerates_cg(self):
        a = poisson_2d(12)
        b = np.random.default_rng(5).standard_normal(a.shape[0])
        plain = cg(a, b, rtol=1e-10)
        p = SplitCholeskyPreconditioner()
        p.setup(a)
        prec = pcg(a, b, preconditioner=p, rtol=1e-10)
        assert prec.converged
        assert prec.iterations < plain.iterations
        assert np.allclose(prec.x, plain.x, atol=1e-6)

    def test_forward_rows(self, matrix):
        p = SplitCholeskyPreconditioner()
        p.setup(matrix)
        rows = p.forward_rows(np.array([2, 3]))
        m = (p.split_factor() @ p.split_factor().T).toarray()
        assert np.allclose(rows.toarray(), m[[2, 3], :])

    def test_work_nnz_positive(self, matrix):
        p = SplitCholeskyPreconditioner()
        p.setup(matrix)
        assert p.work_nnz() > 0
