"""End-to-end tests of :class:`repro.service.SolverService`.

Pins the tentpole guarantees: coalesced results bit-identical to
one-at-a-time ``repro.solve`` dispatch, exact per-tenant ledger
reconciliation, deterministic aggregates for a seeded trace, graceful
shutdown semantics, and the per-problem cache behaviour under
``structure_version`` bumps between batches.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

import repro
from repro.cluster import MachineModel
from repro.core.spec import ResilienceSpec, SolveSpec
from repro.service import (
    ServiceClosedError,
    ServiceStats,
    SolverService,
    TrafficSpec,
    UnknownMatrixError,
    generate_traffic,
)


@pytest.fixture
def service(small_poisson):
    svc = SolverService(k_max=4)
    svc.register_matrix("poisson", small_poisson, n_nodes=4, seed=0,
                        machine=MachineModel(jitter_rel_std=0.0))
    yield svc
    svc.shutdown()


@pytest.fixture
def direct_problem(small_poisson):
    """An identically-constructed problem for one-at-a-time reference runs."""
    return repro.distribute_problem(
        small_poisson, n_nodes=4, seed=0,
        machine=MachineModel(jitter_rel_std=0.0))


def make_rhs(n, count, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(count)]


# -- registry / submission -----------------------------------------------------

class TestRegistryAndSubmission:
    def test_register_returns_cached_problem(self, service):
        problem = service.problem("poisson")
        assert problem is service.problem("poisson")
        assert service.matrix_ids() == ("poisson",)

    def test_duplicate_matrix_id_raises(self, service, small_poisson):
        with pytest.raises(ValueError, match="already registered"):
            service.register_matrix("poisson", small_poisson)

    def test_adopts_existing_problem(self, small_poisson, direct_problem):
        with SolverService() as svc:
            assert svc.register_matrix("p", direct_problem) is direct_problem

    def test_unknown_matrix_raises(self, service):
        with pytest.raises(UnknownMatrixError, match="poisson"):
            service.submit("nope", np.zeros(4))
        with pytest.raises(UnknownMatrixError):
            service.problem("nope")

    def test_wrong_rhs_shape_raises(self, service):
        with pytest.raises(ValueError, match="1-D vector"):
            service.submit("poisson", np.zeros((3, 2)))
        with pytest.raises(ValueError, match="1-D vector"):
            service.submit("poisson", np.zeros(7))

    def test_rhs_is_copied_at_submit(self, service, small_poisson):
        n = small_poisson.shape[0]
        rhs = np.ones(n)
        handle = service.submit("poisson", rhs)
        rhs[:] = 1e9  # mutating the caller's buffer must not affect the solve
        service.drain()
        assert handle.result(5.0).converged

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError, match="window_s"):
            SolverService(window_s=-1.0)
        with pytest.raises(ValueError, match="k_max"):
            SolverService(k_max=0)
        with pytest.raises(ValueError, match="unknown batching policy"):
            SolverService(policy="nope")


# -- coalescing edge cases -----------------------------------------------------

class TestCoalescingEdgeCases:
    def test_empty_window_flush_is_noop(self, service):
        assert service.pump(drain=True) == 0
        assert service.drain() == 0
        assert service.pending_count() == 0

    def test_single_request_bit_identical_to_direct(self, service,
                                                    direct_problem,
                                                    small_poisson):
        (rhs,) = make_rhs(small_poisson.shape[0], 1)
        handle = service.submit("poisson", rhs)
        service.drain()
        res = handle.result(5.0)
        ref = repro.solve(direct_problem, rhs)
        assert res.batch_width == 1
        assert np.array_equal(res.x, ref.x)
        assert res.iterations == ref.iterations
        assert res.residual_norms == [float(v) for v in ref.residual_norms]
        assert res.final_residual_norm == ref.final_residual_norm
        assert res.true_residual_norm == ref.true_residual_norm
        # The whole ledger delta lands on the lone request, exactly.
        assert res.simulated_time == ref.simulated_time
        assert res.charges == ref.time_breakdown

    def test_coalesced_batch_bit_identical_to_direct(self, service,
                                                     direct_problem,
                                                     small_poisson):
        rhs_list = make_rhs(small_poisson.shape[0], 4)
        handles = [service.submit("poisson", b) for b in rhs_list]
        service.drain()
        results = [h.result(5.0) for h in handles]
        assert [r.batch_width for r in results] == [4, 4, 4, 4]
        assert len({r.batch_id for r in results}) == 1
        for rhs, res in zip(rhs_list, results):
            ref = repro.solve(direct_problem, rhs)
            assert np.array_equal(res.x, ref.x)
            assert res.iterations == ref.iterations
            assert res.residual_norms == \
                [float(v) for v in ref.residual_norms]

    def test_incompatible_specs_never_merge(self, service, small_poisson):
        rhs_list = make_rhs(small_poisson.shape[0], 4)
        handles = [
            service.submit("poisson", rhs_list[0], SolveSpec(rtol=1e-8)),
            service.submit("poisson", rhs_list[1], SolveSpec(rtol=1e-6)),
            service.submit("poisson", rhs_list[2], SolveSpec(rtol=1e-8)),
            service.submit("poisson", rhs_list[3], SolveSpec(rtol=1e-6)),
        ]
        service.drain()
        results = [h.result(5.0) for h in handles]
        assert [r.batch_width for r in results] == [2, 2, 2, 2]
        assert results[0].batch_id == results[2].batch_id
        assert results[1].batch_id == results[3].batch_id
        assert results[0].batch_id != results[1].batch_id

    def test_pinned_solver_never_coalesces(self, service, small_poisson):
        rhs_list = make_rhs(small_poisson.shape[0], 3)
        handles = [service.submit("poisson", b, SolveSpec(solver="pcg"))
                   for b in rhs_list]
        service.drain()
        results = [h.result(5.0) for h in handles]
        assert [r.batch_width for r in results] == [1, 1, 1]
        assert all(r.solver == "pcg" for r in results)

    def test_live_preconditioner_instance_never_coalesces(
            self, service, small_poisson, block_jacobi_factory):
        from repro.distributed.partition import BlockRowPartition

        partition = BlockRowPartition(small_poisson.shape[0], 4)
        precond = block_jacobi_factory(small_poisson, partition)
        rhs_list = make_rhs(small_poisson.shape[0], 2)
        handles = [service.submit("poisson", b,
                                  SolveSpec(preconditioner=precond))
                   for b in rhs_list]
        service.drain()
        assert [h.result(5.0).batch_width for h in handles] == [1, 1]

    def test_k_max_overflow_splits_deterministically(self, service,
                                                     small_poisson):
        rhs_list = make_rhs(small_poisson.shape[0], 10)
        handles = [service.submit("poisson", b) for b in rhs_list]
        service.drain()
        results = [h.result(5.0) for h in handles]
        # k_max=4: strict FIFO split 4 + 4 + 2, columns in arrival order.
        assert [r.batch_width for r in results] == [4] * 8 + [2] * 2
        assert [r.batch_column for r in results] == \
            [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
        assert [r.batch_id for r in results] == \
            [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_resilient_requests_coalesce_and_match_direct(
            self, service, small_poisson):
        spec = SolveSpec(resilience=ResilienceSpec(
            phi=2, failures=((10, (1,)),)))
        rhs_list = make_rhs(small_poisson.shape[0], 2)
        handles = [service.submit("poisson", b, spec) for b in rhs_list]
        service.drain()
        results = [h.result(5.0) for h in handles]
        assert [r.batch_width for r in results] == [2, 2]
        assert results[0].solver == "resilient_block_pcg"
        for rhs, res in zip(rhs_list, results):
            # Fresh reference problem per request: failure recovery mutates
            # problem state, so a shared reference problem would not
            # represent the batch's (single) initial state.
            ref_problem = repro.distribute_problem(
                small_poisson, n_nodes=4, seed=0,
                machine=MachineModel(jitter_rel_std=0.0))
            ref = repro.solve(ref_problem, rhs, spec=spec)
            assert np.array_equal(res.x, ref.x)
            assert res.iterations == ref.iterations


# -- shutdown ------------------------------------------------------------------

class TestShutdown:
    def test_shutdown_drains_pending(self, service, small_poisson):
        handles = [service.submit("poisson", b)
                   for b in make_rhs(small_poisson.shape[0], 3)]
        service.shutdown(drain=True)
        assert all(h.result(5.0).converged for h in handles)

    def test_shutdown_without_drain_fails_handles(self, small_poisson):
        svc = SolverService(k_max=4)
        svc.register_matrix("m", small_poisson, n_nodes=4, seed=0)
        handles = [svc.submit("m", b)
                   for b in make_rhs(small_poisson.shape[0], 2)]
        svc.shutdown(drain=False)
        for handle in handles:
            with pytest.raises(ServiceClosedError):
                handle.result(5.0)
        assert svc.stats.n_failed == 2

    def test_submit_after_shutdown_raises(self, service, small_poisson):
        service.shutdown()
        with pytest.raises(ServiceClosedError):
            service.submit("poisson", np.zeros(small_poisson.shape[0]))
        with pytest.raises(ServiceClosedError):
            service.register_matrix("other", small_poisson)

    def test_shutdown_idempotent(self, service):
        service.shutdown()
        service.shutdown()

    def test_context_manager_drains_on_clean_exit(self, small_poisson):
        with SolverService(k_max=4) as svc:
            svc.register_matrix("m", small_poisson, n_nodes=4, seed=0)
            handle = svc.submit("m", np.ones(small_poisson.shape[0]))
        assert handle.result(5.0).converged

    def test_background_scheduler_drains_inflight_on_shutdown(
            self, small_poisson):
        svc = SolverService(k_max=4, window_s=0.002, autostart=True)
        svc.register_matrix("m", small_poisson, n_nodes=4, seed=0)
        handles = [svc.submit("m", b)
                   for b in make_rhs(small_poisson.shape[0], 6)]
        svc.shutdown(drain=True)
        assert all(h.result(10.0).converged for h in handles)


# -- async / sync front ends ---------------------------------------------------

class TestFrontEnds:
    def test_handles_are_awaitable(self, small_poisson):
        svc = SolverService(k_max=4, window_s=0.001, autostart=True)
        svc.register_matrix("m", small_poisson, n_nodes=4, seed=0)

        async def run():
            handles = [svc.submit("m", b)
                       for b in make_rhs(small_poisson.shape[0], 3)]
            return await asyncio.gather(*handles)

        try:
            results = asyncio.run(run())
        finally:
            svc.shutdown()
        assert all(r.converged for r in results)

    def test_solve_sync_without_scheduler(self, service, small_poisson):
        (rhs,) = make_rhs(small_poisson.shape[0], 1)
        result = service.solve_sync("poisson", rhs, tenant="cli")
        assert result.converged
        assert result.tenant == "cli"

    def test_solve_sync_with_scheduler(self, small_poisson):
        svc = SolverService(k_max=4, window_s=0.001, autostart=True)
        svc.register_matrix("m", small_poisson, n_nodes=4, seed=0)
        try:
            result = svc.solve_sync(
                "m", np.ones(small_poisson.shape[0]), timeout=10.0)
        finally:
            svc.shutdown()
        assert result.converged

    def test_request_result_json_serializable(self, service, small_poisson):
        result = service.solve_sync(
            "poisson", np.ones(small_poisson.shape[0]))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["converged"] is True
        assert payload["x"] == list(result.x)
        compact = result.to_dict(include_solution=False,
                                 include_history=False)
        assert "x" not in compact and "residual_norms" not in compact


# -- accounting integration ----------------------------------------------------

class TestAccountingIntegration:
    def test_tenant_charges_reconcile_exactly_with_batch_ledger(
            self, service, small_poisson):
        rhs_list = make_rhs(small_poisson.shape[0], 4)
        # Warm the preconditioner cache so the snapshot delta below is
        # exactly the batch's own charges.
        service.solve_sync("poisson", rhs_list[0])
        ledger = service.problem("poisson").cluster.ledger
        before = ledger.snapshot()
        handles = [service.submit("poisson", b, tenant=f"t{i % 2}")
                   for i, b in enumerate(rhs_list)]
        service.drain()
        after = ledger.snapshot()
        results = [h.result(5.0) for h in handles]
        assert results[0].batch_width == 4
        # Per-phase and total simulated time reconcile bit-for-bit when the
        # shares are re-summed in column order.
        for phase in sorted(set(after) | set(before)):
            total = after.get(phase, 0.0) - before.get(phase, 0.0)
            acc = 0.0
            for res in results:
                acc += res.charges.get(phase, 0.0)
            assert acc == total
        acc = 0.0
        for res in results:
            acc += res.simulated_time
        assert acc == ledger.since(before)

    def test_queue_and_batch_wait_accounting(self, service, small_poisson):
        rhs_list = make_rhs(small_poisson.shape[0], 2)
        handles = [service.submit("poisson", b) for b in rhs_list]
        service.drain()
        first, second = [h.result(5.0) for h in handles]
        assert first.queue_wait_s >= first.batch_wait_s >= 0.0
        assert second.batch_wait_s == 0.0  # youngest member waits for nobody
        assert first.solve_s == second.solve_s > 0.0
        assert first.latency_s == first.queue_wait_s + first.solve_s

    def test_stats_deterministic_across_invocations(self, small_poisson):
        """A seeded trace pumped through a drain-mode service twice yields
        byte-identical ``aggregate()`` JSON (acceptance criterion)."""
        spec = TrafficSpec(n_requests=12, matrix_ids=("m",),
                           tenants=("a", "b", "c"), n_modes=0)

        def run_once():
            svc = SolverService(k_max=4)
            svc.register_matrix("m", small_poisson, n_nodes=4, seed=0,
                                machine=MachineModel(jitter_rel_std=0.0))
            trace = generate_traffic(
                spec, {"m": small_poisson.shape[0]}, seed=99)
            handles = [svc.submit(req.matrix_id, req.rhs, tenant=req.tenant)
                       for req in trace]
            svc.drain()
            for handle in handles:
                handle.result(5.0)
            payload = json.dumps(svc.stats.aggregate(), sort_keys=True)
            svc.shutdown()
            return payload

        assert run_once() == run_once()

    def test_stats_round_trip_through_json(self, service, small_poisson):
        for rhs in make_rhs(small_poisson.shape[0], 3):
            service.submit("poisson", rhs)
        service.drain()
        restored = ServiceStats.from_dict(
            json.loads(json.dumps(service.stats.to_dict())))
        assert restored.aggregate() == service.stats.aggregate()


# -- per-problem cache audit under service reuse -------------------------------

class TestProblemCacheAudit:
    def test_structure_bump_invalidates_next_batch_not_running_one(
            self, service, small_poisson):
        """``restore_block_to_node`` mid-queue: the cached operator and
        preconditioner of the *next* batch are rebuilt, while the objects a
        running batch already resolved stay alive and usable (regression
        pin for concurrent service reuse of the per-problem caches)."""
        problem = service.problem("poisson")
        handle = service.submit("poisson", np.ones(small_poisson.shape[0]))
        service.drain()
        assert handle.result(5.0).converged
        op_before = problem.global_operator()
        pc_before = problem.resolve_preconditioner("block_jacobi")
        version_before = problem.matrix.structure_version

        # A recovery path restores a row block between two batches.
        problem.matrix.restore_block_to_node(1)
        assert problem.matrix.structure_version == version_before + 1

        # The previously-resolved objects are untouched (a batch holding
        # them mid-solve would keep computing with consistent state)...
        assert (op_before @ np.ones(small_poisson.shape[0])).shape == \
            (small_poisson.shape[0],)
        assert pc_before.is_set_up

        # ...but the next batch resolves fresh ones against the new version.
        handle2 = service.submit("poisson", np.ones(small_poisson.shape[0]))
        service.drain()
        assert handle2.result(5.0).converged
        assert problem.global_operator() is not op_before
        assert problem.resolve_preconditioner("block_jacobi") is not pc_before
        # And the rebuilt cache is stable until the next bump.
        assert problem.global_operator() is problem.global_operator()
