"""Benchmark: resilient multi-RHS block solves under node failures.

For every configured column count ``k`` this compares, on the virtual
cluster, one :class:`~repro.core.resilient_block_pcg.ResilientBlockPCG`
solve of ``A X = B`` hit by a multi-node failure schedule against ``k``
sequential :class:`~repro.core.resilient_pcg.ResilientPCG` solves of the
same columns hit by the *same* schedule -- all dispatched through the
``repro.solve`` façade with specs composed by the experiment harness
(:meth:`ExperimentConfig.solve_spec` with ``n_rhs=k`` attaches the
``BlockSpec`` next to the ``ResilienceSpec``):

* **Equivalence contract** -- per-column iterates and residual histories of
  the block solve must be bit-identical to the sequential resilient solves
  (same recovery math per column, one shared local factorization);
* **Recovery amortization (simulated)** -- the block recovery re-assembles
  all ``k`` columns with one reverse scatter and one local multi-RHS solve,
  so its simulated recovery time grows far slower than the ``k``-fold
  sequential recovery cost;
* **Redundancy amortization** -- the per-iteration extra redundancy traffic
  ships all ``k`` columns in the single-vector scheme's messages: message
  count independent of ``k``, volume scaling with ``k``;
* **Wallclock amortization** -- one resilient block solve is faster than
  ``k`` sequential resilient solves end to end.

Usage::

    python benchmarks/bench_resilient_block_pcg.py                  # full sweep
    python benchmarks/bench_resilient_block_pcg.py --smoke          # CI smoke
    python benchmarks/bench_resilient_block_pcg.py --json out.json

Environment knobs (full mode): ``REPRO_BENCH_RBPCG_N`` (matrix size, default
6000), ``REPRO_BENCH_RBPCG_NODES`` (cluster size, default 16),
``REPRO_BENCH_RBPCG_KS`` (comma-separated column counts, default "1,4,8"),
``REPRO_BENCH_RBPCG_PHI`` (redundancy, default 2).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - uninstalled checkout
        sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.cluster import MachineModel  # noqa: E402
from repro.cluster.cost_model import Phase  # noqa: E402
from repro.core import distribute_problem, solve  # noqa: E402
from repro.distributed import (  # noqa: E402
    DistributedMultiVector,
    DistributedVector,
)
from repro.harness.experiment import ExperimentConfig  # noqa: E402
from repro.matrices import build_matrix  # noqa: E402
from repro.matrices.suite import get_record, matrix_ids  # noqa: E402

#: The matrix with the largest original problem size (Table 1): M3/G3_circuit.
LARGEST_MATRIX_ID = max(
    matrix_ids(), key=lambda mid: get_record(mid).original_n
)


def _fresh_problem(matrix, n_nodes: int):
    """A fresh distributed problem on its own cluster (jitter off)."""
    return distribute_problem(matrix, n_nodes=n_nodes,
                              machine=MachineModel(jitter_rel_std=0.0))


def run_case(matrix_id: str, n: int, n_nodes: int, k: int, phi: int,
             rtol: float, max_iterations: int, seed: int = 0
             ) -> Dict[str, object]:
    """One (matrix, k) configuration: resilient block vs. k sequential."""
    matrix = build_matrix(matrix_id, n=n, seed=seed)
    n_actual = matrix.shape[0]
    rng = np.random.default_rng(seed)
    rhs_global = rng.standard_normal((n_actual, k))

    # Failure schedule: phi ranks fail together at ~30% of a reference run.
    reference = solve(_fresh_problem(matrix, n_nodes), rhs_global[:, 0],
                      rtol=rtol, max_iterations=max_iterations,
                      preconditioner="block_jacobi")
    fail_at = max(1, int(0.3 * reference.iterations))
    failed_ranks = list(range(1, 1 + phi))
    failures = [(fail_at, failed_ranks)]

    config = ExperimentConfig(matrix=matrix, n_nodes=n_nodes, rtol=rtol,
                              max_iterations=max_iterations,
                              jitter_rel_std=0.0, n_rhs=k)
    spec_block = config.solve_spec(phi=phi, failures=failures)
    if k == 1:
        # The k=1 charge-equality case still runs through the block solver
        # (the harness spec resolves single-rhs studies to resilient_pcg).
        spec_block = spec_block.with_overrides(solver="resilient_block_pcg")

    # -- one resilient block solve ------------------------------------------
    problem = _fresh_problem(matrix, n_nodes)
    problem.resolve_preconditioner(spec_block.preconditioner)
    rhs_block = DistributedMultiVector.from_global(
        problem.cluster, problem.partition, "B", rhs_global)
    start = time.perf_counter()
    block_result = solve(problem, rhs_block, spec=spec_block)
    t_block = time.perf_counter() - start
    ledger = problem.cluster.ledger
    block_redundancy_msgs = ledger.messages.get(Phase.REDUNDANCY_COMM, 0)
    block_redundancy_elems = ledger.elements.get(Phase.REDUNDANCY_COMM, 0)

    # -- k sequential resilient solves (same schedule each) -----------------
    seq_config = ExperimentConfig(matrix=matrix, n_nodes=n_nodes, rtol=rtol,
                                  max_iterations=max_iterations,
                                  jitter_rel_std=0.0, n_rhs=1)
    seq_results = []
    t_seq = 0.0
    seq_redundancy_msgs = 0
    seq_recovery_time = 0.0
    for j in range(k):
        problem_j = _fresh_problem(matrix, n_nodes)
        problem_j.resolve_preconditioner(spec_block.preconditioner)
        rhs_j = DistributedVector.from_global(
            problem_j.cluster, problem_j.partition, "b", rhs_global[:, j])
        spec_j = seq_config.solve_spec(phi=phi, failures=failures)
        start = time.perf_counter()
        result_j = solve(problem_j, rhs_j, spec=spec_j)
        t_seq += time.perf_counter() - start
        seq_results.append(result_j)
        seq_redundancy_msgs += problem_j.cluster.ledger.messages.get(
            Phase.REDUNDANCY_COMM, 0)
        seq_recovery_time += result_j.simulated_recovery_time

    # -- contracts -----------------------------------------------------------
    histories_identical = all(
        block_result.residual_histories[j] == seq_results[j].residual_norms
        for j in range(k)
    )
    iterates_identical = all(
        np.array_equal(block_result.x[:, j], seq_results[j].x)
        for j in range(k)
    )
    recovered = (block_result.n_failures_recovered == phi
                 and all(r.n_failures_recovered == phi for r in seq_results))
    seq_sim_time = float(sum(r.simulated_time for r in seq_results))

    return {
        "matrix_id": matrix_id,
        "n": int(n_actual),
        "nnz": int(matrix.nnz),
        "n_nodes": int(n_nodes),
        "k": int(k),
        "phi": int(phi),
        "fail_at": int(fail_at),
        "failed_ranks": failed_ranks,
        "rtol": rtol,
        "iterations": list(block_result.iterations),
        "all_converged": bool(block_result.all_converged),
        "recovered_all_failures": bool(recovered),
        "histories_identical": bool(histories_identical),
        "iterates_identical": bool(iterates_identical),
        # redundancy charge model: messages flat in k, volume scales
        "redundancy_msgs_block": int(block_redundancy_msgs),
        "redundancy_msgs_sequential": int(seq_redundancy_msgs),
        "redundancy_elements_block": int(block_redundancy_elems),
        # recovery amortization
        "recovery_sim_time_block": block_result.simulated_recovery_time,
        "recovery_sim_time_sequential": seq_recovery_time,
        "recovery_sim_speedup": (
            seq_recovery_time / block_result.simulated_recovery_time
            if block_result.simulated_recovery_time else 1.0),
        # end-to-end
        "sim_time_block": block_result.simulated_time,
        "sim_time_sequential": seq_sim_time,
        "sim_speedup": (seq_sim_time / block_result.simulated_time
                        if block_result.simulated_time else 1.0),
        "wallclock_block_s": t_block,
        "wallclock_sequential_s": t_seq,
        "wallclock_speedup": (t_seq / t_block if t_block else 1.0),
    }


def run_sweep(matrix_id: str, n: int, n_nodes: int, ks: List[int], phi: int,
              rtol: float, max_iterations: int) -> Dict[str, object]:
    rows = []
    for k in ks:
        row = run_case(matrix_id, n, n_nodes, k, phi, rtol, max_iterations)
        rows.append(row)
        print(
            f"  {row['matrix_id']:>3}  n={row['n']:>7,}  N={row['n_nodes']:>3}  "
            f"k={row['k']:>2}  phi={row['phi']}  "
            f"recovery_sim={row['recovery_sim_speedup']:>5.2f}x  "
            f"sim={row['sim_speedup']:>5.2f}x  "
            f"wall={row['wallclock_speedup']:>5.2f}x  "
            f"identical={row['histories_identical'] and row['iterates_identical']}"
        )
    return {
        "matrix_id": matrix_id,
        "target_n": n,
        "n_nodes": n_nodes,
        "ks": ks,
        "phi": phi,
        "rtol": rtol,
        "headline": _headline(rows),
        "rows": rows,
    }


def _headline(rows: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """The largest measured column count (the amortization showcase)."""
    if not rows:
        return None
    best = max(rows, key=lambda r: int(r["k"]))
    return {
        "matrix_id": best["matrix_id"],
        "n_nodes": best["n_nodes"],
        "k": best["k"],
        "phi": best["phi"],
        "recovery_sim_speedup": best["recovery_sim_speedup"],
        "sim_speedup": best["sim_speedup"],
        "wallclock_speedup": best["wallclock_speedup"],
        "histories_identical": best["histories_identical"],
        "iterates_identical": best["iterates_identical"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI configuration (small size, M3 only)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the headline wallclock "
                             "speedup is >= X and the equivalence contract "
                             "holds")
    args = parser.parse_args(argv)

    if args.smoke:
        matrix_id = LARGEST_MATRIX_ID
        n = 1500
        n_nodes = 8
        ks = [1, 4]
        phi = 2
        rtol = 1e-6
        max_iterations = 300
    else:
        matrix_id = LARGEST_MATRIX_ID
        n = int(os.environ.get("REPRO_BENCH_RBPCG_N", 6000))
        n_nodes = int(os.environ.get("REPRO_BENCH_RBPCG_NODES", 16))
        ks = [int(v) for v in
              os.environ.get("REPRO_BENCH_RBPCG_KS", "1,4,8").split(",")]
        phi = int(os.environ.get("REPRO_BENCH_RBPCG_PHI", 2))
        rtol = 1e-8
        max_iterations = 2000

    print(f"Resilient block-PCG benchmark: matrix={matrix_id} n~{n} "
          f"N={n_nodes} ks={ks} phi={phi} rtol={rtol}")
    results = run_sweep(matrix_id, n, n_nodes, ks, phi, rtol, max_iterations)

    headline = results["headline"]
    if headline is not None:
        print(
            f"headline: {headline['matrix_id']} at N={headline['n_nodes']}, "
            f"k={headline['k']}, phi={headline['phi']}: recovery "
            f"{headline['recovery_sim_speedup']:.2f}x, simulated "
            f"{headline['sim_speedup']:.2f}x, wallclock "
            f"{headline['wallclock_speedup']:.2f}x vs k sequential "
            f"resilient solves"
        )

    ok = all(
        r["histories_identical"] and r["iterates_identical"]
        and r["all_converged"] and r["recovered_all_failures"]
        # redundancy message count per iteration is independent of k, so a
        # block run never ships more redundancy messages than one
        # single-vector run of the same length charges.
        and (r["k"] == 1
             or r["redundancy_msgs_block"] <= r["redundancy_msgs_sequential"])
        for r in results["rows"]
    )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"wrote {args.json}")
    if not ok:
        print("ERROR: resilient block-PCG equivalence/amortization contract "
              "violated", file=sys.stderr)
        return 1
    if args.require_speedup is not None:
        if headline is None or \
                headline["wallclock_speedup"] < args.require_speedup:
            print(
                f"ERROR: headline wallclock speedup below required "
                f"{args.require_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
