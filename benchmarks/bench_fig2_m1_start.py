"""Figure 2 -- matrix M1 (parabolic_fem analogue), failures at the start.

Same panel layout as Figure 1 but for the fluid-dynamics matrix M1 with the
failed nodes clustered at the start (lowest ranks / vector indices).  The
paper uses this panel to show that a run *with* node failures can occasionally
finish faster than the failure-free run, because the iteration count after
reconstruction can be slightly smaller.
"""

from __future__ import annotations

import pytest

from conftest import make_config
from repro.failures import FailureLocation
from repro.harness import figure_series, run_matrix_study


@pytest.fixture(scope="module")
def study(bench_settings):
    config = make_config(bench_settings, "M1")
    return run_matrix_study(
        config, phis=bench_settings.phis,
        locations=(FailureLocation.START,),
        fractions=bench_settings.fractions,
    )


def test_figure2_report(benchmark, study, bench_settings, capsys):
    series = benchmark.pedantic(figure_series, args=(study, FailureLocation.START),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(series.render())
        print(f"[settings: {bench_settings.describe()}]")
    # every configuration converged and the iteration counts with failures
    # stay within a couple of iterations of the reference count (the effect
    # the paper highlights: reconstruction barely perturbs convergence).
    reference_iterations = study.reference.mean_iterations
    for (phi, _loc), runs in study.with_failures.items():
        assert runs.all_converged
        assert abs(runs.mean_iterations - reference_iterations) <= \
            0.15 * reference_iterations + 2
    # Overheads stay bounded (M1 is a small, narrow-band problem).  At
    # benchmark scale the relative overhead is larger than the paper's 24.5 %
    # for phi = 8 because the scaled analogue does much less compute per
    # iteration; see EXPERIMENTS.md for the calibration discussion.
    for phi in series.phis():
        assert series.relative_overhead(phi) < 4.0


def test_benchmark_m1_reference_solve(benchmark, bench_settings):
    """Wall-clock benchmark of the M1 reference (non-resilient) solve."""
    from repro.core.api import distribute_problem, reference_solve
    from repro.matrices import build_matrix

    matrix = build_matrix("M1", n=bench_settings.matrix_size, seed=0)

    def run():
        problem = distribute_problem(matrix, n_nodes=bench_settings.n_nodes)
        return reference_solve(problem, preconditioner="block_jacobi")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged
