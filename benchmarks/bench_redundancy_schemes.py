"""Benchmark: redundancy-scheme frontier -- full copies vs RS parity stripes.

For each failure tolerance ``phi`` the bench runs the resilient PCG under
every registered redundancy scheme and maps the overhead-vs-tolerance
frontier:

* **storage overhead** -- redundant elements stored per retained generation,
  as a fraction of the problem size (``phi`` for full copies, roughly
  ``1 + m/g`` for RS(g+m, g) parity stripes);
* **per-iteration traffic and time** -- the extra redundancy communication
  charged on the failure-free path (Sec. 4.2 charge model);
* **recovery time** -- simulated seconds to reconstruct after ``m = phi``
  simultaneous failures inside one parity stripe (the parity scheme's worst
  case, CR-SIM's ``repair``: ``g`` block downloads per stripe);
* **unrecoverable-loss rate** -- a seeded Monte-Carlo campaign striking
  random failure sets of size ``1 .. phi + 1``: both schemes survive any
  ``<= phi`` simultaneous failures by construction; the campaign measures
  how often each survives ``phi + 1`` (copies: whenever some copy set
  survives; parity: whenever no stripe loses more than ``m`` members).

The correctness contract rides along: under the same failure schedule the
RS-parity solve must be **bit-identical** to the copies solve (the GF(2^8)
byte coding makes the decoded blocks exact), and both must match the
failure-free reference to reconstruction accuracy.

Usage::

    python benchmarks/bench_redundancy_schemes.py                  # full sweep
    python benchmarks/bench_redundancy_schemes.py --smoke          # CI smoke
    python benchmarks/bench_redundancy_schemes.py --json out.json
    python benchmarks/bench_redundancy_schemes.py --smoke \\
        --require-parity-savings                                   # CI gate

The gate exits non-zero unless, at every swept ``phi``, the RS-parity
storage overhead is strictly below the copies overhead at equal failure
tolerance *and* the recovered solves are bit-identical to the copies path.

Environment knobs (full mode): ``REPRO_BENCH_RED_N`` (grid side, default
32), ``REPRO_BENCH_RED_NODES`` (cluster size, default 12),
``REPRO_BENCH_RED_PHIS`` (comma-separated, default "1,2,3"),
``REPRO_BENCH_RED_TRIALS`` (campaign trials per size, default 40).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - uninstalled checkout
        sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.cluster import (  # noqa: E402
    FailureEvent,
    FailureInjector,
    MachineModel,
    Phase,
    UnrecoverableStateError,
)
from repro.core import distribute_problem  # noqa: E402
from repro.core.redundancy import REDUNDANCY_SCHEMES  # noqa: E402
from repro.core.resilient_pcg import ResilientPCG  # noqa: E402
from repro.core.rs_parity import RSParityScheme  # noqa: E402
from repro.matrices import poisson_2d  # noqa: E402
from repro.precond import make_preconditioner  # noqa: E402

GROUP_SIZE = 4


def _solver(matrix, n_nodes: int, phi: int, scheme: str, rtol: float,
            failures: Optional[List[FailureEvent]] = None) -> ResilientPCG:
    problem = distribute_problem(matrix, n_nodes=n_nodes, seed=0,
                                 machine=MachineModel(jitter_rel_std=0.0))
    options = {"group_size": GROUP_SIZE} if scheme == "rs_parity" else None
    return ResilientPCG(
        problem.matrix, problem.rhs, make_preconditioner("block_jacobi"),
        phi=phi, scheme=scheme, scheme_options=options, rtol=rtol,
        failure_injector=FailureInjector(failures) if failures else None,
    )


def _stripe_failure_ranks(matrix, n_nodes: int, phi: int) -> List[int]:
    """``phi`` members of one RS stripe -- the parity scheme's worst case."""
    problem = distribute_problem(matrix, n_nodes=n_nodes, seed=0,
                                 machine=MachineModel(jitter_rel_std=0.0))
    from repro.distributed.comm_context import CommunicationContext
    context = CommunicationContext.from_matrix(problem.matrix)
    scheme = RSParityScheme(context, phi, group_size=GROUP_SIZE)
    members = scheme.group_members(0)
    return sorted(members[:min(phi, len(members))])


def _campaign_loss_rate(matrix, n_nodes: int, phi: int, scheme: str,
                        rtol: float, trials: int, seed: int = 0
                        ) -> Dict[str, float]:
    """Empirical unrecoverable fraction for random failure-set sizes."""
    rng = np.random.default_rng(seed)
    rates: Dict[str, float] = {}
    for size in (phi, phi + 1):
        if size == 0 or size >= n_nodes:
            continue
        lost = 0
        for _ in range(trials):
            ranks = sorted(rng.choice(n_nodes, size=size, replace=False))
            solver = _solver(matrix, n_nodes, phi, scheme, rtol,
                             failures=[FailureEvent(5, [int(r) for r in ranks])])
            try:
                solver.solve()
            except UnrecoverableStateError:
                lost += 1
        rates[f"loss_rate_{size}_failures"] = lost / trials
    return rates


def run_phi_case(matrix, n_nodes: int, phi: int, rtol: float,
                 trials: int) -> Dict[str, object]:
    """The frontier row of one failure tolerance ``phi``."""
    n = matrix.shape[0]
    reference = _solver(matrix, n_nodes, phi, "copies", rtol).solve()
    failed = _stripe_failure_ranks(matrix, n_nodes, phi)
    schedule = [FailureEvent(10, failed)] if failed else None

    per_scheme: Dict[str, Dict[str, object]] = {}
    recovered_x: Dict[str, np.ndarray] = {}
    for scheme in sorted(REDUNDANCY_SCHEMES.names()):
        solver = _solver(matrix, n_nodes, phi, scheme, rtol)
        result = solver.solve()
        messages, elements = solver.scheme.extra_traffic_per_iteration()
        row: Dict[str, object] = {
            "iterations": int(result.iterations),
            "converged": bool(result.converged),
            "free_run_bit_identical": bool(np.array_equal(result.x,
                                                          reference.x)),
            "storage_overhead_ratio":
                solver.scheme.redundant_elements_per_generation() / n,
            "traffic_elements_per_iteration": int(elements),
            "traffic_messages_per_iteration": int(messages),
            "per_iteration_overhead_time":
                result.info["redundancy"]["per_iteration_time"],
            "simulated_time_free": float(result.simulated_time),
        }
        if schedule:
            fsolver = _solver(matrix, n_nodes, phi, scheme, rtol,
                              failures=list(schedule))
            fresult = fsolver.solve()
            recovered_x[scheme] = fresult.x
            row.update({
                "failed_ranks": failed,
                "recovery_sim_time": float(sum(
                    rep.simulated_time for rep in fsolver.recovery_reports)),
                "recovery_traffic_elements": int(
                    fsolver.cluster.ledger.total_elements(
                        [Phase.RECOVERY_COMM])),
                "recovered_matches_reference": bool(np.allclose(
                    fresult.x, reference.x, rtol=1e-10, atol=1e-12)),
            })
        row.update(_campaign_loss_rate(matrix, n_nodes, phi, scheme, rtol,
                                       trials))
        per_scheme[scheme] = row

    bit_identical = ("copies" in recovered_x and "rs_parity" in recovered_x
                     and bool(np.array_equal(recovered_x["copies"],
                                             recovered_x["rs_parity"])))
    return {
        "phi": phi,
        "n": int(n),
        "n_nodes": int(n_nodes),
        "group_size": GROUP_SIZE,
        "schemes": per_scheme,
        "recovery_bit_identical_across_schemes": bit_identical,
    }


def run_sweep(n_side: int, n_nodes: int, phis: List[int], rtol: float,
              trials: int) -> Dict[str, object]:
    matrix = poisson_2d(n_side)
    rows = []
    for phi in phis:
        row = run_phi_case(matrix, n_nodes, phi, rtol, trials)
        rows.append(row)
        copies = row["schemes"]["copies"]
        rs = row["schemes"]["rs_parity"]
        print(
            f"  phi={phi}  storage: copies={copies['storage_overhead_ratio']:.2f}n "
            f"rs={rs['storage_overhead_ratio']:.2f}n  "
            f"traffic/iter: {copies['traffic_elements_per_iteration']:>6} vs "
            f"{rs['traffic_elements_per_iteration']:>6} elems  "
            f"recovery: {copies.get('recovery_sim_time', 0.0):.2e}s vs "
            f"{rs.get('recovery_sim_time', 0.0):.2e}s  "
            f"identical={row['recovery_bit_identical_across_schemes']}"
        )
    return {
        "n_side": n_side,
        "n_nodes": n_nodes,
        "phis": phis,
        "rtol": rtol,
        "campaign_trials": trials,
        "group_size": GROUP_SIZE,
        "rows": rows,
    }


def check_parity_savings(results: Dict[str, object]) -> List[str]:
    """The CI gate: cheaper storage at equal tolerance, bit-exact recovery.

    The storage comparison applies from ``phi >= 2`` on: parity pays a
    constant ``n`` for the owners' generation snapshots plus ``~n/g`` per
    tolerated failure, so a single full copy (``1.0n``) is the cheaper
    representation at ``phi = 1`` while every additional tolerated failure
    costs parity ``1/g`` of what it costs the copies scheme -- the frontier
    crosses at ``phi = 2`` and diverges from there.
    """
    errors: List[str] = []
    for row in results["rows"]:
        phi = row["phi"]
        copies = row["schemes"]["copies"]
        rs = row["schemes"]["rs_parity"]
        if phi >= 2 and not (rs["storage_overhead_ratio"]
                             < copies["storage_overhead_ratio"]):
            errors.append(
                f"phi={phi}: rs_parity storage "
                f"{rs['storage_overhead_ratio']:.3f}n is not below copies "
                f"{copies['storage_overhead_ratio']:.3f}n")
        for scheme_row, name in ((copies, "copies"), (rs, "rs_parity")):
            if not scheme_row["free_run_bit_identical"]:
                errors.append(f"phi={phi}: {name} failure-free run deviates "
                              "from the reference")
            key = f"loss_rate_{phi}_failures"
            if scheme_row.get(key, 0.0) != 0.0:
                errors.append(f"phi={phi}: {name} lost state within its "
                              f"advertised tolerance ({key}="
                              f"{scheme_row[key]:.2f})")
            if "recovered_matches_reference" in scheme_row and \
                    not scheme_row["recovered_matches_reference"]:
                errors.append(f"phi={phi}: {name} recovered solve deviates "
                              "from the failure-free reference")
        if copies.get("failed_ranks") and \
                not row["recovery_bit_identical_across_schemes"]:
            errors.append(f"phi={phi}: rs_parity recovery is not "
                          "bit-identical to the copies recovery")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI configuration (small grid, few trials)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--require-parity-savings", action="store_true",
                        help="exit non-zero unless rs_parity beats copies "
                             "storage at equal tolerance with bit-identical "
                             "recovered solves")
    args = parser.parse_args(argv)

    if args.smoke:
        n_side, n_nodes, phis, trials, rtol = 16, 8, [1, 2], 8, 1e-6
    else:
        n_side = int(os.environ.get("REPRO_BENCH_RED_N", 32))
        n_nodes = int(os.environ.get("REPRO_BENCH_RED_NODES", 12))
        phis = [int(v) for v in
                os.environ.get("REPRO_BENCH_RED_PHIS", "1,2,3").split(",")]
        trials = int(os.environ.get("REPRO_BENCH_RED_TRIALS", 40))
        rtol = 1e-8

    print(f"Redundancy-scheme frontier: poisson n={n_side * n_side} "
          f"N={n_nodes} phis={phis} g={GROUP_SIZE} trials={trials}")
    results = run_sweep(n_side, n_nodes, phis, rtol, trials)

    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"wrote {args.json}")
    if args.require_parity_savings:
        errors = check_parity_savings(results)
        if errors:
            for message in errors:
                print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print("gate: rs_parity storage < copies at equal tolerance, "
              "recovered solves bit-identical -- OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
