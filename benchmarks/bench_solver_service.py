"""Benchmark: solver-service request coalescing vs one-at-a-time dispatch.

A seeded synthetic traffic burst (``repro.service.generate_traffic``) is
pushed through two dispatch paths against the same registered operator:

* **one-at-a-time** -- every request is its own ``repro.solve`` call, the
  way clients would dispatch without a service in front;
* **coalesced** -- the :class:`~repro.service.SolverService` groups pending
  requests sharing a ``(matrix_id, SolveSpec)`` key into ``(n, k)`` block
  solves (``k <= k_max``), amortizing the per-iteration allreduce latency
  and the per-call Python/NumPy dispatch overhead over the batch.

For every configuration the bench reports throughput (solves/sec) for both
paths, the coalescing speedup, wallclock latency percentiles (p50/p99) of
the coalesced path, and the per-request *bit-identity* contract: each
coalesced solution must equal its one-at-a-time reference exactly (the
block solver runs lock-step per-column recurrences, so riding in a batch
must not change a single bit).

Usage::

    python benchmarks/bench_solver_service.py                  # full sweep
    python benchmarks/bench_solver_service.py --smoke          # CI smoke run
    python benchmarks/bench_solver_service.py --json out.json  # machine-readable
    python benchmarks/bench_solver_service.py --smoke \\
        --require-coalescing-speedup 2.0                       # CI gate

Environment knobs (full mode): ``REPRO_BENCH_SVC_N`` (grid side, default
48), ``REPRO_BENCH_SVC_NODES`` (cluster size, default 8),
``REPRO_BENCH_SVC_REQUESTS`` (trace length, default 64),
``REPRO_BENCH_SVC_KMAX`` (comma-separated batch widths, default "1,4,8").
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - uninstalled checkout
        sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.cluster import MachineModel  # noqa: E402
from repro.core import SolveSpec, distribute_problem, solve  # noqa: E402
from repro.matrices import poisson_2d  # noqa: E402
from repro.service import SolverService, TrafficSpec, generate_traffic  # noqa: E402

MATRIX_ID = "poisson2d"
TENANTS = ("tenant-a", "tenant-b", "tenant-c")


def _fresh_problem(matrix, n_nodes: int, spec: SolveSpec):
    """A distributed problem on its own jitter-free cluster, caches warm."""
    problem = distribute_problem(matrix, n_nodes=n_nodes, seed=0,
                                 machine=MachineModel(jitter_rel_std=0.0))
    problem.resolve_preconditioner(spec.preconditioner)
    return problem


def run_case(n_side: int, n_nodes: int, n_requests: int, k_max: int,
             rtol: float, seed: int = 0) -> Dict[str, object]:
    """Benchmark one configuration: coalesced service vs direct dispatch."""
    matrix = poisson_2d(n_side)
    n = matrix.shape[0]
    spec = SolveSpec(preconditioner="block_jacobi", rtol=rtol)
    traffic_spec = TrafficSpec(n_requests=n_requests,
                               matrix_ids=(MATRIX_ID,), tenants=TENANTS)
    trace = generate_traffic(traffic_spec, {MATRIX_ID: n}, seed=seed)

    # -- one-at-a-time dispatch: every request is its own repro.solve -------
    # Preconditioner factorization is warmed outside the timed region on
    # both paths, so the numbers compare dispatch + solver time only.
    problem = _fresh_problem(matrix, n_nodes, spec)
    solve(problem, trace[0].rhs, spec=spec)
    start = time.perf_counter()
    references = [solve(problem, req.rhs, spec=spec) for req in trace]
    t_direct = time.perf_counter() - start

    # -- coalesced dispatch through the service -----------------------------
    service = SolverService(policy="greedy_width", k_max=k_max)
    service.register_matrix(
        MATRIX_ID, _fresh_problem(matrix, n_nodes, spec), default_spec=spec)
    service.solve_sync(MATRIX_ID, trace[0].rhs)
    start = time.perf_counter()
    handles = [service.submit(MATRIX_ID, req.rhs, tenant=req.tenant)
               for req in trace]
    service.drain()
    results = [handle.result() for handle in handles]
    t_service = time.perf_counter() - start
    stats = service.stats
    service.shutdown()

    bit_identical = all(
        np.array_equal(res.x, ref.x)
        and res.residual_norms == ref.residual_norms
        for res, ref in zip(results, references)
    )
    # The warm-up request rode through the same stats object; drop it from
    # the width/latency views by slicing to the timed batches only.
    widths = stats.batch_widths[1:]
    latency = stats.latency_summary()

    return {
        "matrix_id": MATRIX_ID,
        "n": int(n),
        "n_nodes": int(n_nodes),
        "n_requests": int(n_requests),
        "k_max": int(k_max),
        "rtol": rtol,
        "all_converged": bool(all(r.converged for r in results)),
        "bit_identical": bool(bit_identical),
        "n_batches": len(widths),
        "mean_batch_width": (float(sum(widths)) / len(widths)
                             if widths else 0.0),
        "wallclock_direct_s": t_direct,
        "wallclock_service_s": t_service,
        "throughput_direct_rps": (n_requests / t_direct
                                  if t_direct else 0.0),
        "throughput_service_rps": (n_requests / t_service
                                   if t_service else 0.0),
        "coalescing_speedup": (t_direct / t_service if t_service else 1.0),
        "latency_p50_s": latency["latency_p50_s"],
        "latency_p99_s": latency["latency_p99_s"],
        "sim_time_direct": float(sum(r.simulated_time for r in references)),
        "sim_time_service": float(stats.simulated_time),
    }


def run_sweep(n_side: int, n_nodes: int, n_requests: int, k_maxes: List[int],
              rtol: float) -> Dict[str, object]:
    rows = []
    for k_max in k_maxes:
        row = run_case(n_side, n_nodes, n_requests, k_max, rtol)
        rows.append(row)
        print(
            f"  n={row['n']:>6,}  N={row['n_nodes']:>3}  "
            f"k_max={row['k_max']:>2}  "
            f"width={row['mean_batch_width']:>4.1f}  "
            f"direct={row['throughput_direct_rps']:>6.1f}/s  "
            f"service={row['throughput_service_rps']:>6.1f}/s  "
            f"speedup={row['coalescing_speedup']:>5.2f}x  "
            f"p99={row['latency_p99_s'] * 1e3:>6.1f}ms  "
            f"identical={row['bit_identical']}"
        )
    return {
        "matrix_id": MATRIX_ID,
        "n_side": n_side,
        "n_nodes": n_nodes,
        "n_requests": n_requests,
        "k_maxes": k_maxes,
        "rtol": rtol,
        "headline": _headline(rows),
        "rows": rows,
    }


def _headline(rows: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """The widest configured batch (the coalescing showcase)."""
    if not rows:
        return None
    best = max(rows, key=lambda r: int(r["k_max"]))
    return {
        "matrix_id": best["matrix_id"],
        "n": best["n"],
        "n_nodes": best["n_nodes"],
        "k_max": best["k_max"],
        "mean_batch_width": best["mean_batch_width"],
        "throughput_direct_rps": best["throughput_direct_rps"],
        "throughput_service_rps": best["throughput_service_rps"],
        "coalescing_speedup": best["coalescing_speedup"],
        "latency_p50_s": best["latency_p50_s"],
        "latency_p99_s": best["latency_p99_s"],
        "bit_identical": best["bit_identical"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI configuration (small grid, short trace)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--require-coalescing-speedup", type=float,
                        default=None, metavar="X",
                        help="exit non-zero unless the headline coalescing "
                             "speedup is >= X and every request is "
                             "bit-identical to its direct dispatch")
    args = parser.parse_args(argv)

    if args.smoke:
        n_side = 24
        n_nodes = 4
        n_requests = 32
        k_maxes = [1, 4, 8]
        rtol = 1e-6
    else:
        n_side = int(os.environ.get("REPRO_BENCH_SVC_N", 48))
        n_nodes = int(os.environ.get("REPRO_BENCH_SVC_NODES", 8))
        n_requests = int(os.environ.get("REPRO_BENCH_SVC_REQUESTS", 64))
        k_maxes = [int(v) for v in
                   os.environ.get("REPRO_BENCH_SVC_KMAX", "1,4,8").split(",")]
        rtol = 1e-8

    print(f"Solver-service benchmark: {MATRIX_ID} n={n_side * n_side} "
          f"N={n_nodes} requests={n_requests} k_maxes={k_maxes} rtol={rtol}")
    results = run_sweep(n_side, n_nodes, n_requests, k_maxes, rtol)

    headline = results["headline"]
    if headline is not None:
        print(
            f"headline: k_max={headline['k_max']} coalesces "
            f"{headline['n_nodes']}-node solves at mean width "
            f"{headline['mean_batch_width']:.1f}: "
            f"{headline['throughput_service_rps']:.1f} solves/s vs "
            f"{headline['throughput_direct_rps']:.1f} one-at-a-time "
            f"({headline['coalescing_speedup']:.2f}x), p99 latency "
            f"{headline['latency_p99_s'] * 1e3:.1f} ms, bit-identical="
            f"{headline['bit_identical']}"
        )

    ok = all(r["bit_identical"] and r["all_converged"]
             for r in results["rows"])
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"wrote {args.json}")
    if not ok:
        print("ERROR: coalesced solves are not bit-identical to one-at-a-"
              "time dispatch", file=sys.stderr)
        return 1
    if args.require_coalescing_speedup is not None:
        if headline is None or headline["coalescing_speedup"] \
                < args.require_coalescing_speedup:
            print(
                f"ERROR: headline coalescing speedup below required "
                f"{args.require_coalescing_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
