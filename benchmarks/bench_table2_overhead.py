"""Table 2 -- runtime overheads of the resilient PCG solver.

For every configured matrix analogue this regenerates the paper's Table-2
row(s): the reference time ``t0``, the relative overhead of the undisturbed
resilient solver for each number of redundant copies phi, and -- for
psi = phi simultaneous node failures clustered at the start or the center of
the vector -- the relative reconstruction time and the total overhead with
failures.

Paper reference points (128 nodes, full-size matrices): undisturbed overhead
0.2-8.2 % (phi=1), 2.2-24.1 % (phi=3), 8.2-91.3 % (phi=8); overhead with
three failures between 2.8 % and 55.0 %.  The scaled-down analogues are
expected to reproduce the *shape*: overheads grow with phi, sparse irregular
matrices (M3, M4) pay far more than wide-band structural ones (M5-M8).
"""

from __future__ import annotations

import pytest

from conftest import make_config
from repro.failures import FailureLocation
from repro.harness import render_table2, run_matrix_study, table2_rows


@pytest.fixture(scope="module")
def studies(bench_settings):
    """Run the full Table-2 sweep for the configured matrices (cached)."""
    out = []
    for matrix_id in bench_settings.matrices:
        config = make_config(bench_settings, matrix_id)
        out.append(run_matrix_study(
            config,
            phis=bench_settings.phis,
            locations=(FailureLocation.START, FailureLocation.CENTER),
            fractions=bench_settings.fractions,
        ))
    return out


def test_table2_report(benchmark, studies, bench_settings, capsys):
    """Print the Table-2 reproduction and check its qualitative shape."""
    with capsys.disabled():
        print()
        print(render_table2(studies))
        print(f"[settings: {bench_settings.describe()}]")
    rows = benchmark.pedantic(table2_rows, args=(studies,), rounds=1, iterations=1)
    assert rows
    phis = sorted(
        {int(k.split("phi")[1]) for r in rows for k in r
         if k.startswith("undisturbed_overhead_phi")}
    )
    for study in studies:
        # overheads grow (weakly) with the number of redundant copies
        overheads = [study.undisturbed_overhead(phi) for phi in phis]
        assert overheads[-1] >= overheads[0] - 2.0
        # all runs converged
        assert study.reference.all_converged
        for runs in study.with_failures.values():
            assert runs.all_converged
            # reconstruction accounts for part of the with-failure overhead
            assert runs.mean("recovery_time") > 0


def test_sparse_pays_more_than_dense(benchmark, studies):
    benchmark.pedantic(table2_rows, args=(studies,), rounds=1, iterations=1)
    """Sec. 5 / Table 2 shape: irregular sparse matrices (M3/M4) have larger
    relative overhead than wide-band structural matrices (M5-M8)."""
    by_id = {s.config.matrix_id: s for s in studies}
    sparse_ids = [m for m in ("M3", "M4") if m in by_id]
    dense_ids = [m for m in ("M5", "M6", "M7", "M8") if m in by_id]
    if not (sparse_ids and dense_ids):
        pytest.skip("need at least one sparse and one dense matrix configured")
    phi = max(p for p in by_id[sparse_ids[0]].undisturbed)
    sparse_overhead = max(by_id[m].undisturbed_overhead(phi) for m in sparse_ids)
    dense_overhead = min(by_id[m].undisturbed_overhead(phi) for m in dense_ids)
    assert sparse_overhead > dense_overhead


def test_benchmark_single_resilient_solve(benchmark, bench_settings):
    """Wall-clock benchmark of one resilient solve with three failures."""
    from repro.core.api import distribute_problem, resilient_solve
    from repro.matrices import build_matrix

    matrix = build_matrix("M5", n=bench_settings.matrix_size, seed=0)

    def run():
        problem = distribute_problem(matrix, n_nodes=bench_settings.n_nodes)
        return resilient_solve(problem, phi=3, preconditioner="block_jacobi",
                               failures=[(10, [0, 1, 2])])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged
    assert result.n_failures_recovered == 3
