"""Table 3 -- relative residual deviation (Eqn. 7) after convergence.

For every configured matrix: the largest relative deviation between the
solver residual and the true residual ``b - A x`` over all failure
experiments (``max Delta_ESR``) next to the deviation of the reference PCG
run (``Delta_PCG``).  The paper finds both to be tiny compared to the 1e-8
residual reduction (1e-8 ... 1e-3 range), i.e. the reconstruction does not
meaningfully degrade the solution accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_config
from repro.failures import FailureLocation
from repro.harness import render_table3, run_matrix_study, table3_rows


@pytest.fixture(scope="module")
def studies(bench_settings):
    out = []
    for matrix_id in bench_settings.matrices:
        config = make_config(bench_settings, matrix_id)
        out.append(run_matrix_study(
            config,
            phis=(max(bench_settings.phis),),
            locations=(FailureLocation.CENTER,),
            fractions=bench_settings.fractions,
        ))
    return out


def test_table3_report(benchmark, studies, bench_settings, capsys):
    with capsys.disabled():
        print()
        print(render_table3(studies))
        print(f"[settings: {bench_settings.describe()}]")
    rows = benchmark.pedantic(table3_rows, args=(studies,), rounds=1, iterations=1)
    for row in rows:
        # Both deviations exist and are small compared to the 1e-8 reduction
        # of the residual norm (the paper's observation).
        assert np.isfinite(row["max_delta_esr"])
        assert np.isfinite(row["delta_pcg"])
        assert abs(row["max_delta_esr"]) < 1e-2
        assert abs(row["delta_pcg"]) < 1e-2


def test_benchmark_deviation_evaluation(benchmark, studies):
    """Time the metric evaluation itself (cheap, but part of the pipeline)."""
    def evaluate():
        return table3_rows(studies)

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    assert len(rows) == len(studies)
