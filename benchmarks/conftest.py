"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Sec. 7) on scaled-down synthetic analogues of the SuiteSparse matrices.  The
scale is controlled by environment variables so the same harness can run as a
quick smoke benchmark (default) or as a longer, closer-to-the-paper study:

``REPRO_BENCH_N``          target matrix size (default 2500)
``REPRO_BENCH_NODES``      virtual cluster size (default 16)
``REPRO_BENCH_REPS``       repetitions per configuration (default 2; paper >= 5)
``REPRO_BENCH_MATRICES``   comma-separated matrix ids for Tables 2/3
                           (default "M1,M3,M5,M8"; use "all" for M1-M8)
``REPRO_BENCH_FRACTIONS``  comma-separated progress fractions (default "0.5";
                           the paper uses 0.2,0.5,0.8)
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover
        sys.path.insert(0, str(_SRC))

from repro.matrices.suite import matrix_ids  # noqa: E402


@dataclass(frozen=True)
class BenchSettings:
    """Resolved benchmark-scale settings."""

    matrix_size: int
    n_nodes: int
    repetitions: int
    matrices: Tuple[str, ...]
    fractions: Tuple[float, ...]
    phis: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"n~{self.matrix_size}, N={self.n_nodes}, reps={self.repetitions}, "
            f"matrices={','.join(self.matrices)}, phis={self.phis}, "
            f"fractions={self.fractions}"
        )


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_list(name: str, default: str) -> List[str]:
    raw = os.environ.get(name, default)
    return [item.strip() for item in raw.split(",") if item.strip()]


@pytest.fixture(scope="session")
def bench_settings() -> BenchSettings:
    matrices = _env_list("REPRO_BENCH_MATRICES", "M1,M3,M5,M8")
    if matrices == ["all"]:
        matrices = matrix_ids()
    fractions = tuple(float(f) for f in _env_list("REPRO_BENCH_FRACTIONS", "0.5"))
    n_nodes = _env_int("REPRO_BENCH_NODES", 16)
    phis = (1, 3, 8) if n_nodes > 8 else (1, 2, 3)
    return BenchSettings(
        matrix_size=_env_int("REPRO_BENCH_N", 2500),
        n_nodes=n_nodes,
        repetitions=_env_int("REPRO_BENCH_REPS", 2),
        matrices=tuple(matrices),
        fractions=fractions,
        phis=phis,
    )


def make_config(settings: BenchSettings, matrix_id: str, **overrides):
    """Build an :class:`ExperimentConfig` at benchmark scale."""
    from repro.harness import ExperimentConfig

    kwargs = dict(
        matrix_id=matrix_id,
        matrix_size=settings.matrix_size,
        n_nodes=settings.n_nodes,
        repetitions=settings.repetitions,
        preconditioner="block_jacobi",
        jitter_rel_std=0.02,
        seed=0,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)
