"""Figure 4 -- influence of the failure iteration on the total runtime.

Three simultaneous node failures are introduced near the center of the vector
at 20 %, 50 % or 80 % of the solver's progress (matrix M5 analogue).  The
paper's finding: the iteration at which the failures strike has little
influence on the total runtime -- the boxes for the three progress fractions
overlap.
"""

from __future__ import annotations

import pytest

from conftest import make_config
from repro.failures import FailureLocation
from repro.harness import progress_sweep, run_reference


@pytest.fixture(scope="module")
def sweep(bench_settings):
    config = make_config(bench_settings, "M5")
    phi = 3 if bench_settings.n_nodes > 3 else 1
    return progress_sweep(
        config, phi=phi, location=FailureLocation.CENTER,
        fractions=(0.2, 0.5, 0.8),
    )


def test_figure4_report(benchmark, sweep, bench_settings, capsys):
    benchmark.pedantic(sweep.medians, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(sweep.render())
        print(f"relative spread of medians: {sweep.spread():.2%}")
        print(f"[settings: {bench_settings.describe()}]")
    assert sweep.fractions() == [0.2, 0.5, 0.8]
    assert all(m > 0 for m in sweep.medians())
    # The paper's observation: the failure point has little influence on the
    # total runtime.  Allow a generous margin for the small scaled problems.
    assert sweep.spread() < 0.35


def test_benchmark_progress_sweep_single_point(benchmark, bench_settings):
    """Time one run of the sweep's mid-point configuration."""
    from repro.core.api import distribute_problem, resilient_solve
    from repro.failures import FailureScenario, resolve_events
    from repro.matrices import build_matrix

    config = make_config(bench_settings, "M5")
    matrix = config.build_matrix()
    reference = run_reference(config)
    scenario = FailureScenario(n_failures=3, progress_fraction=0.5,
                               location=FailureLocation.CENTER)
    events = resolve_events(scenario, n_nodes=config.n_nodes,
                            reference_iterations=int(reference.mean_iterations))

    def run():
        problem = distribute_problem(matrix, n_nodes=config.n_nodes,
                                     machine=config.build_machine(matrix.shape[0]))
        return resilient_solve(problem, phi=3, failures=events,
                               preconditioner="block_jacobi")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged
