"""Figure 1 -- matrix M5 (Emilia_923 analogue), failures at the center.

Runtimes and relative overhead of the resilient solver for phi in {1, 3, 8}
copies: failure-free runs (blue boxes in the paper) next to runs with
psi = phi simultaneous node failures introduced close to the center of the
vector (orange boxes), against the reference-time band.

Paper's observation for M5: reconstruction takes very little time -- the
boxes with failures sit almost on top of the failure-free boxes, and the
overhead comes almost entirely from the extra redundancy communication.
"""

from __future__ import annotations

import pytest

from conftest import make_config
from repro.failures import FailureLocation
from repro.harness import figure_series, run_matrix_study


@pytest.fixture(scope="module")
def study(bench_settings):
    config = make_config(bench_settings, "M5")
    return run_matrix_study(
        config, phis=bench_settings.phis,
        locations=(FailureLocation.CENTER,),
        fractions=bench_settings.fractions,
    )


def test_figure1_report(benchmark, study, bench_settings, capsys):
    series = benchmark.pedantic(figure_series, args=(study, FailureLocation.CENTER),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(series.render())
        print(f"[settings: {bench_settings.describe()}]")
    phis = series.phis()
    # overheads are modest and grow with phi (M5 is a favourable, wide-band case)
    overheads = [series.relative_overhead(phi) for phi in phis]
    assert all(o > -0.1 for o in overheads)
    assert overheads[-1] >= overheads[0] - 0.05
    # Reconstruction is cheap in absolute terms for M5; note that relative to
    # t0 it is inflated at benchmark scale because the scaled-down analogue
    # converges in far fewer iterations than the real matrix (see
    # EXPERIMENTS.md), so only a loose sanity bound is asserted here.
    for phi in phis:
        undisturbed = series.undisturbed[phi].median
        disturbed = series.with_failures[phi].median
        assert disturbed >= undisturbed * 0.8
        recon_mean, _ = study.reconstruction_time(phi, "center")
        assert 0.0 < recon_mean < 400.0  # percent of t0


def test_benchmark_m5_failure_run(benchmark, study, bench_settings):
    """Time one M5 run with the maximum tolerated number of failures."""
    from repro.core.api import solve
    from repro.matrices import build_matrix

    phi = max(bench_settings.phis)
    matrix = build_matrix("M5", n=bench_settings.matrix_size, seed=0)
    failed = list(range(bench_settings.n_nodes // 2,
                        bench_settings.n_nodes // 2 + phi))

    def run():
        return solve(matrix, n_nodes=bench_settings.n_nodes,
                     preconditioner="block_jacobi", phi=phi,
                     failures=[(5, failed)])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged
