"""Ablation A3 -- SpMV/redundancy scaling and the Sec. 4.2 bounds.

Sweeps the number of virtual nodes and the redundancy level phi on a Poisson
analogue and checks that (i) the modelled per-iteration redundancy overhead
always stays inside the analytic bounds ``[max_i sum_k |R^c_ik| mu,
phi (lambda_max + ceil(n/N) mu)]`` and (ii) the upper bound grows linearly in
phi, as derived in the paper's analysis.  Also provides wall-clock benchmarks
of the distributed SpMV kernel itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import analyze_overhead
from repro.core.api import distribute_problem
from repro.distributed import DistributedVector, distributed_spmv
from repro.harness import format_table
from repro.matrices import poisson_2d


@pytest.fixture(scope="module")
def scaling_rows(bench_settings):
    nx = max(int(np.sqrt(bench_settings.matrix_size)), 24)
    matrix = poisson_2d(nx)
    rows = []
    for n_nodes in (4, 8, bench_settings.n_nodes):
        n_nodes = min(n_nodes, matrix.shape[0])
        problem = distribute_problem(matrix, n_nodes=n_nodes)
        for phi in (1, 2, 3):
            if phi >= n_nodes:
                continue
            analysis = analyze_overhead(problem.matrix, phi,
                                        context=problem.context)
            rows.append({
                "n_nodes": n_nodes,
                "phi": phi,
                "per_iteration_time": analysis.per_iteration_time,
                "lower": analysis.lower_bound,
                "upper": analysis.upper_bound,
                "within": analysis.within_bounds,
                "extra_elements": analysis.total_extra_elements,
            })
    return matrix, rows


def test_bounds_report(benchmark, scaling_rows, bench_settings, capsys):
    matrix, rows = scaling_rows
    benchmark.pedantic(lambda: list(rows), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["N", "phi", "modelled ovh [s/iter]", "lower bound", "upper bound",
             "extra elems"],
            [[r["n_nodes"], r["phi"], f"{r['per_iteration_time']:.3e}",
              f"{r['lower']:.3e}", f"{r['upper']:.3e}", r["extra_elements"]]
             for r in rows],
            title=f"Ablation A3: Sec. 4.2 bounds on a {matrix.shape[0]}-unknown "
                  "Poisson problem",
        ))
    assert all(r["within"] for r in rows)
    # The upper bound is linear in phi for fixed N.
    for n_nodes in {r["n_nodes"] for r in rows}:
        subset = sorted((r for r in rows if r["n_nodes"] == n_nodes),
                        key=lambda r: r["phi"])
        if len(subset) >= 2:
            ratio = subset[-1]["upper"] / subset[0]["upper"]
            assert ratio == pytest.approx(subset[-1]["phi"] / subset[0]["phi"],
                                          rel=0.01)


def test_benchmark_distributed_spmv(benchmark, bench_settings):
    """Wall-clock of the distributed SpMV kernel (the solver's hot loop)."""
    nx = max(int(np.sqrt(bench_settings.matrix_size)), 24)
    matrix = poisson_2d(nx)
    problem = distribute_problem(matrix, n_nodes=bench_settings.n_nodes)
    x = DistributedVector.from_global(problem.cluster, problem.partition, "x",
                                      np.ones(matrix.shape[0]))
    y = DistributedVector.zeros(problem.cluster, problem.partition, "y")

    def run():
        distributed_spmv(problem.matrix, x, y, problem.context)
        return y

    result = benchmark(run)
    assert np.allclose(result.to_global(), matrix @ np.ones(matrix.shape[0]))


def test_benchmark_esr_exchange(benchmark, bench_settings):
    """Wall-clock of one ESR redundant-copy exchange."""
    from repro.core.esr import ESRProtocol

    nx = max(int(np.sqrt(bench_settings.matrix_size)), 24)
    matrix = poisson_2d(nx)
    problem = distribute_problem(matrix, n_nodes=bench_settings.n_nodes)
    phi = max(p for p in bench_settings.phis if p < bench_settings.n_nodes)
    esr = ESRProtocol(problem.cluster, problem.context, phi)
    p = DistributedVector.from_global(problem.cluster, problem.partition, "p",
                                      np.ones(matrix.shape[0]))

    iteration_counter = {"j": 0}

    def run():
        esr.after_spmv(p, iteration_counter["j"])
        iteration_counter["j"] += 1

    benchmark(run)
    assert esr.available_generations()
