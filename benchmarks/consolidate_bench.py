"""Consolidate individual benchmark JSON outputs into one tracking file.

The CI bench smoke job runs the SpMV, solver, reliability, service and
redundancy benchmarks (``bench_spmv_engine.py``, ``bench_spmv_overlap.py``,
``bench_block_pcg.py``, ``bench_resilient_block_pcg.py``,
``bench_reliability_campaign.py``, ``bench_solver_service.py``,
``bench_redundancy_schemes.py``) with ``--json`` and merges their outputs
into a single ``BENCH_spmv.json`` at the repository root, so the
performance trajectory (engine speedup, overlap gain, multi-RHS
amortization, block-PCG allreduce amortization, resilient-block recovery
amortization, campaign survival probabilities per placement, service
coalescing throughput, redundancy-scheme storage/traffic frontier) is
tracked PR over PR from one artifact.

Usage::

    python benchmarks/consolidate_bench.py --out BENCH_spmv.json \\
        spmv_engine_bench.json spmv_overlap_bench.json \\
        block_pcg_bench.json resilient_block_pcg_bench.json

Each input file is stored under its stem (``spmv_engine_bench``, ...); the
top level carries the generation timestamp and, when available, the current
git revision.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional


def git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:  # pragma: no cover - no git binary
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def consolidate(inputs: List[Path], out_path: Path) -> dict:
    """Merge the readable inputs; missing/corrupt files are recorded, not
    fatal (CI runs this with ``if: always()`` so a crashed benchmark still
    yields a partial consolidated artifact)."""
    payload = {
        "generated_unix": int(time.time()),
        "git_revision": git_revision(),
        "benchmarks": {},
        "missing": [],
    }
    for path in inputs:
        try:
            payload["benchmarks"][path.stem] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            payload["missing"].append({"input": str(path), "error": str(exc)})
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", type=Path,
                        help="benchmark JSON files to merge")
    parser.add_argument("--out", type=Path, default=Path("BENCH_spmv.json"),
                        help="consolidated output path (default: "
                             "BENCH_spmv.json in the current directory)")
    args = parser.parse_args(argv)
    payload = consolidate(args.inputs, args.out)
    names = ", ".join(sorted(payload["benchmarks"])) or "no inputs readable"
    print(f"wrote {args.out} ({names})")
    for entry in payload["missing"]:
        print(f"warning: skipped {entry['input']}: {entry['error']}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
