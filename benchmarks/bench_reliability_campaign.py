"""Monte-Carlo reliability benchmark: placement strategies under rack bursts.

For each backup-placement strategy this fans a pinned-seed campaign of
stochastic failure traces (independent node lifetimes + correlated
rack-level bursts, the :mod:`repro.failures.traces` generator) across a
process pool and compares the aggregated reliability statistics:

* **survival / unrecoverable-loss probability** -- the headline: at equal
  storage overhead (same ``phi``), the rack-aware placements must lose
  state measurably less often than the paper's in-rack-neighbour heuristic
  when failures are rack-correlated;
* **overhead percentiles** -- p50/p99 simulated-time overhead of the
  surviving runs over the failure-free baseline;
* **campaign health** -- every run must end in a structured outcome
  (``converged`` / ``not_converged`` / ``unrecoverable``); worker crashes,
  timeouts or errors fail the benchmark.

The campaign aggregates are bit-deterministic in the seed (worker count
does not matter); ``--check-determinism`` re-runs one campaign and compares
the aggregate JSON byte-for-byte, which the CI ``campaign-smoke`` lane
gates on.

Usage::

    python benchmarks/bench_reliability_campaign.py                  # full (1000 runs/placement)
    python benchmarks/bench_reliability_campaign.py --smoke          # CI smoke (48 runs)
    python benchmarks/bench_reliability_campaign.py --json out.json  # machine-readable
    python benchmarks/bench_reliability_campaign.py --smoke --check-determinism
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - uninstalled checkout
        sys.path.insert(0, str(_SRC))

from repro.failures.traces import LifetimeModel, TraceSpec  # noqa: E402
from repro.harness.campaign import CampaignSpec, run_campaign  # noqa: E402

#: Placements compared at equal storage overhead (same phi).
PLACEMENTS = ("paper", "next_ranks", "rack_aware", "copyset")

#: The rack-aware strategies gated against the naive ones.
GATED = ("rack_aware", "copyset")

#: Campaign configuration: M3 at n=160 over 8 nodes converges failure-free
#: in 32 iterations at rtol=1e-8; the trace horizon covers that window and
#: the burst rate puts ~1.2 whole-rack bursts inside it in expectation, so
#: most runs see at least one correlated failure.
BASE_TRACE = dict(n_nodes=8, horizon=30, burst_rate=0.04, rack_size=4,
                  repair_delay=0.0, label="mc")


def campaign_spec(placement: str, n_runs: int, seed: int) -> CampaignSpec:
    return CampaignSpec(
        matrix_id="M3", matrix_size=160, matrix_seed=0,
        n_nodes=8, phi=3, placement=placement, rack_size=4,
        preconditioner="block_jacobi", rtol=1e-8,
        trace=TraceSpec(lifetime=LifetimeModel(distribution="exponential",
                                               scale=400.0),
                        **BASE_TRACE),
        n_runs=n_runs, seed=seed, timeout_s=120.0,
    )


def run_comparison(n_runs: int, seed: int, workers: Optional[int]
                   ) -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    for placement in PLACEMENTS:
        spec = campaign_spec(placement, n_runs, seed)
        start = time.perf_counter()
        result = run_campaign(spec, workers=workers)
        elapsed = time.perf_counter() - start
        aggregate = result.aggregate()
        overhead = aggregate["overhead_pct"]
        counts = aggregate["counts"]
        rows.append({
            "placement": placement,
            "aggregate": aggregate,
            "wallclock_s": elapsed,
        })
        print(
            f"  {placement:>10}  survival={aggregate['survival_probability']:.3f}  "
            f"unrecoverable={aggregate['unrecoverable_probability']:.3f}  "
            f"recoveries/run={aggregate['recoveries']['mean_per_run']:.2f}  "
            f"overhead p50/p99="
            + (f"{overhead['p50']:.0f}%/{overhead['p99']:.0f}%"
               if overhead else "n/a")
            + f"  [crashed={counts['worker_crashed']} errors={counts['error']} "
            f"timeouts={counts['timeout']}]  {elapsed:.1f}s"
        )
    return {
        "n_runs": n_runs,
        "seed": seed,
        "phi": 3,
        "trace": campaign_spec("paper", n_runs, seed).trace.to_dict(),
        "rows": rows,
        "headline": _headline(rows),
    }


def _headline(rows: List[Dict[str, object]]) -> Dict[str, object]:
    by_placement = {r["placement"]: r["aggregate"] for r in rows}
    return {
        "paper_unrecoverable": by_placement["paper"][
            "unrecoverable_probability"],
        "rack_aware_unrecoverable": by_placement["rack_aware"][
            "unrecoverable_probability"],
        "copyset_unrecoverable": by_placement["copyset"][
            "unrecoverable_probability"],
    }


def check_gates(results: Dict[str, object]) -> List[str]:
    """The blocking assertions of the CI lane; returns failure messages."""
    failures: List[str] = []
    by_placement = {r["placement"]: r["aggregate"] for r in results["rows"]}
    for placement, aggregate in by_placement.items():
        counts = aggregate["counts"]
        unhandled = counts["worker_crashed"] + counts["error"] + \
            counts["timeout"]
        if unhandled:
            failures.append(
                f"{placement}: {unhandled} run(s) without a structured solve "
                f"outcome (crashed={counts['worker_crashed']}, "
                f"errors={counts['error']}, timeouts={counts['timeout']})")
    paper_loss = by_placement["paper"]["unrecoverable_probability"]
    for placement in GATED:
        loss = by_placement[placement]["unrecoverable_probability"]
        if not loss < paper_loss:
            failures.append(
                f"{placement}: unrecoverable probability {loss:.4f} is not "
                f"below the paper placement's {paper_loss:.4f} at equal "
                f"storage overhead")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI configuration (48 runs per placement)")
    parser.add_argument("--runs", type=int, default=None, metavar="N",
                        help="runs per placement (default: 48 smoke, "
                             "1000 full)")
    parser.add_argument("--seed", type=int, default=7,
                        help="campaign base seed (default 7)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="pool size (0 = inline, default: CPU-derived)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--check-determinism", action="store_true",
                        help="re-run one campaign and require byte-identical "
                             "aggregate JSON")
    args = parser.parse_args(argv)

    n_runs = args.runs if args.runs is not None else (48 if args.smoke
                                                      else 1000)
    print(f"Reliability campaign benchmark: M3 n=160, 8 nodes, phi=3, "
          f"{n_runs} runs/placement, seed={args.seed}")
    results = run_comparison(n_runs, args.seed, args.workers)

    headline = results["headline"]
    print(
        f"headline: unrecoverable-loss probability "
        f"paper={headline['paper_unrecoverable']:.4f} vs "
        f"rack_aware={headline['rack_aware_unrecoverable']:.4f} / "
        f"copyset={headline['copyset_unrecoverable']:.4f}"
    )

    failures = check_gates(results)

    if args.check_determinism:
        spec = campaign_spec(PLACEMENTS[0], n_runs, args.seed)
        first = next(r["aggregate"] for r in results["rows"]
                     if r["placement"] == PLACEMENTS[0])
        again = run_campaign(spec, workers=args.workers).aggregate()
        identical = json.dumps(first, sort_keys=True) == \
            json.dumps(again, sort_keys=True)
        print(f"determinism: aggregate JSON "
              f"{'bit-identical' if identical else 'DIFFERS'} across "
              f"invocations")
        if not identical:
            failures.append("campaign aggregates differ between two "
                            "invocations with the same seed")

    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"wrote {args.json}")

    for message in failures:
        print(f"ERROR: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
