"""Figure 3 -- matrix M8 (audikw_1 analogue): overhead growth with phi.

The paper's Figure 3 shows, for the densest structural matrix M8, how the
overhead of keeping redundant copies grows superlinearly with the number of
tolerated node failures, while remaining small in absolute terms (~2.5 % for
three failures, ~10 % for eight failures) because M8's wide, dense band makes
it a particularly favourable case for the ESR scheme (Sec. 5).
"""

from __future__ import annotations

import pytest

from conftest import make_config
from repro.analysis import analyze_overhead
from repro.core.api import distribute_problem
from repro.failures import FailureLocation
from repro.harness import figure_series, run_matrix_study
from repro.matrices import build_matrix


@pytest.fixture(scope="module")
def study(bench_settings):
    config = make_config(bench_settings, "M8")
    return run_matrix_study(
        config, phis=bench_settings.phis,
        locations=(FailureLocation.CENTER,),
        fractions=bench_settings.fractions,
    )


def test_figure3_report(benchmark, study, bench_settings, capsys):
    series = benchmark.pedantic(figure_series, args=(study, FailureLocation.CENTER),
                                rounds=1, iterations=1)
    phis = series.phis()
    overheads = [study.undisturbed_overhead(phi) for phi in phis]
    with capsys.disabled():
        print()
        print(series.render())
        print("undisturbed overhead per phi [%]:",
              {p: round(o, 2) for p, o in zip(phis, overheads)})
        print(f"[settings: {bench_settings.describe()}]")
    # overhead grows with phi ...
    assert overheads == sorted(overheads) or \
        max(overheads) - min(overheads) < 2.0
    # ... and the growth from the smallest to the largest phi is superlinear
    # in phi whenever the overhead is measurably nonzero (Fig. 3's message).
    if overheads[-1] > 1.0 and overheads[0] > 0.05:
        phi_ratio = phis[-1] / phis[0]
        assert overheads[-1] / max(overheads[0], 1e-9) > phi_ratio * 0.8


def test_extra_traffic_growth_matches_analysis(benchmark, bench_settings):
    """The redundancy traffic predicted by the Sec. 4.2 analysis grows with
    phi faster for the sparse M3 analogue than for the dense M8 analogue."""
    growth = {}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for matrix_id in ("M3", "M8"):
        matrix = build_matrix(matrix_id, n=bench_settings.matrix_size, seed=0)
        problem = distribute_problem(matrix, n_nodes=bench_settings.n_nodes)
        phis = [p for p in bench_settings.phis if p < bench_settings.n_nodes]
        extras = [
            analyze_overhead(problem.matrix, phi, context=problem.context
                             ).total_extra_elements
            for phi in phis
        ]
        growth[matrix_id] = extras[-1] / max(matrix.shape[0], 1)
    assert growth["M3"] > 0
    # Relative to the problem size, the sparse matrix needs at least as much
    # extra redundancy as the dense one.
    assert growth["M3"] >= growth["M8"] * 0.9


def test_benchmark_m8_undisturbed_solve(benchmark, bench_settings):
    from repro.core.api import distribute_problem, resilient_solve

    matrix = build_matrix("M8", n=bench_settings.matrix_size, seed=0)
    phi = max(bench_settings.phis)

    def run():
        problem = distribute_problem(matrix, n_nodes=bench_settings.n_nodes)
        return resilient_solve(problem, phi=phi, preconditioner="block_jacobi")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged
