"""Benchmark: split-phase comm/compute overlap and batched multi-RHS SpMV.

For every configured (matrix, node count) pair this measures, on the virtual
cluster:

* **Simulated overlap gain** -- the overlap-aware per-SpMV charge
  ``max_i(max(halo_i, diag_i) + offdiag_i)`` vs. the serialized
  ``halo + compute`` charge, together with the fraction of the halo time
  hidden by the diagonal compute.  The overlapped charge must never exceed
  the serialized one (and is strictly smaller whenever every rank has halo
  traffic and diagonal work, i.e. on every connected suite matrix).
* **Numeric deviation of split execution** -- the split-phase kernels round
  like PETSc's overlapped ``MatMult`` (diagonal terms before off-diagonal
  terms per row), so the max-abs deviation from the dense-gather reference
  must stay within a few ulps (``1e-12`` acceptance bound).
* **Multi-RHS amortization (wallclock)** -- one batched
  ``distributed_spmv_block`` call with ``k`` columns vs. ``k`` sequential
  single-vector engine calls; the batched path stages one ghost gather for
  all columns and runs one CSR x dense-block kernel per rank, and its
  per-column results are bit-identical to the single calls.

Usage::

    python benchmarks/bench_spmv_overlap.py                  # full sweep
    python benchmarks/bench_spmv_overlap.py --smoke          # CI smoke run
    python benchmarks/bench_spmv_overlap.py --json out.json  # machine-readable

Environment knobs (full mode): ``REPRO_BENCH_SPMV_N`` (matrix size, default
16000), ``REPRO_BENCH_SPMV_REPS`` (timed calls per measurement, default 20),
``REPRO_BENCH_SPMV_K`` (multi-RHS column count, default 8).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - uninstalled checkout
        sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.cluster import MachineModel, VirtualCluster  # noqa: E402
from repro.distributed import (  # noqa: E402
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedMultiVector,
    DistributedVector,
    distributed_spmv,
    distributed_spmv_block,
)
from repro.matrices import build_matrix  # noqa: E402
from repro.matrices.suite import get_record, matrix_ids  # noqa: E402

#: The matrix with the largest original problem size (Table 1): M3/G3_circuit.
LARGEST_MATRIX_ID = max(
    matrix_ids(), key=lambda mid: get_record(mid).original_n
)


def _timed_loop(fn, reps: int, repeats: int = 3) -> float:
    """Median over *repeats* of the mean per-call wallclock of *reps* calls."""
    fn()  # warmup: builds/caches the engine, touches all buffers
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - start) / reps)
    return float(np.median(samples))


def run_case(matrix_id: str, n: int, n_nodes: int, reps: int, k: int,
             seed: int = 0) -> Dict[str, object]:
    """Benchmark one (matrix, node count) configuration."""
    matrix = build_matrix(matrix_id, n=n, seed=seed)
    n_actual = matrix.shape[0]
    partition = BlockRowPartition(n_actual, n_nodes)
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(n_actual)
    block_values = rng.standard_normal((n_actual, k))

    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
    context = CommunicationContext.from_matrix(dist)
    engine = dist.spmv_engine(context)

    # -- simulated overlap gain (static charges, no timing loop needed) ----
    charge = engine.overlap_charge()
    halo_serial = engine.halo_cost[0]
    serialized = halo_serial + engine.compute_cost
    sim_speedup = serialized / charge.total_time if charge.total_time else 1.0

    # -- numeric deviation of split execution vs. the reference ------------
    x = DistributedVector.from_global(cluster, partition, "x", values)
    y_split = DistributedVector.zeros(cluster, partition, "ys")
    y_ref = DistributedVector.zeros(cluster, partition, "yr")
    distributed_spmv(dist, x, y_split, context, charge=False, overlap=True)
    distributed_spmv(dist, x, y_ref, context, charge=False, engine=False)
    scale = max(float(np.max(np.abs(y_ref.to_global()))), 1.0)
    deviation = float(
        np.max(np.abs(y_split.to_global() - y_ref.to_global())) / scale
    )

    # -- multi-RHS amortization (wallclock) --------------------------------
    X = DistributedMultiVector.from_global(cluster, partition, "X",
                                           block_values)
    Y = DistributedMultiVector.zeros(cluster, partition, "Y", k)
    singles_x = [
        DistributedVector.from_global(cluster, partition, f"sx{j}",
                                      block_values[:, j])
        for j in range(k)
    ]
    singles_y = [
        DistributedVector.zeros(cluster, partition, f"sy{j}")
        for j in range(k)
    ]

    def batched_call():
        distributed_spmv_block(dist, X, Y, context)

    def sequential_calls():
        for xj, yj in zip(singles_x, singles_y):
            distributed_spmv(dist, xj, yj, context)

    t_batched = _timed_loop(batched_call, reps)
    t_sequential = _timed_loop(sequential_calls, reps)

    # Per-column equivalence of the batched path (bit-identical contract).
    batched_global = Y.to_global()
    columns_identical = all(
        np.array_equal(batched_global[:, j], singles_y[j].to_global())
        for j in range(k)
    )

    return {
        "matrix_id": matrix_id,
        "n": int(n_actual),
        "nnz": int(matrix.nnz),
        "n_nodes": int(n_nodes),
        "k": int(k),
        "halo_serialized_time": halo_serial,
        "spmv_serialized_time": serialized,
        "spmv_overlap_time": charge.total_time,
        "overlap_sim_speedup": sim_speedup,
        "hidden_halo_fraction": charge.hidden_halo_fraction,
        "exposed_comm_time": charge.exposed_comm_time,
        "overlap_time_drops": bool(charge.total_time < serialized),
        "split_rel_deviation": deviation,
        "multirhs_batched_us_per_call": t_batched * 1e6,
        "multirhs_sequential_us_per_call": t_sequential * 1e6,
        "multirhs_speedup": t_sequential / t_batched,
        "multirhs_columns_identical": bool(columns_identical),
    }


def run_sweep(matrices: List[str], node_counts: List[int], n: int,
              reps: int, k: int) -> Dict[str, object]:
    rows = []
    for matrix_id in matrices:
        for n_nodes in node_counts:
            row = run_case(matrix_id, n, n_nodes, reps, k)
            rows.append(row)
            print(
                f"  {row['matrix_id']:>3}  n={row['n']:>7,}  "
                f"N={row['n_nodes']:>3}  "
                f"sim_overlap={row['overlap_sim_speedup']:>5.2f}x  "
                f"hidden_halo={row['hidden_halo_fraction']:>6.1%}  "
                f"multirhs(k={row['k']})={row['multirhs_speedup']:>5.2f}x  "
                f"dev={row['split_rel_deviation']:.2e}"
            )
    return {
        "target_n": n,
        "reps": reps,
        "k": k,
        "largest_matrix_id": LARGEST_MATRIX_ID,
        "headline": _headline(rows),
        "rows": rows,
    }


def _headline(rows: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """Largest suite matrix at the largest node count >= 8 (if measured)."""
    candidates = [
        r for r in rows
        if r["matrix_id"] == LARGEST_MATRIX_ID and int(r["n_nodes"]) >= 8
    ]
    if not candidates:
        return None
    best = max(candidates, key=lambda r: int(r["n_nodes"]))
    return {
        "matrix_id": best["matrix_id"],
        "n_nodes": best["n_nodes"],
        "overlap_sim_speedup": best["overlap_sim_speedup"],
        "hidden_halo_fraction": best["hidden_halo_fraction"],
        "overlap_time_drops": best["overlap_time_drops"],
        "multirhs_speedup": best["multirhs_speedup"],
        "multirhs_columns_identical": best["multirhs_columns_identical"],
        "split_rel_deviation": best["split_rel_deviation"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI configuration (small sizes, M3 only)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--require-multirhs-speedup", type=float,
                        default=None, metavar="X",
                        help="exit non-zero unless the headline multi-RHS "
                             "speedup is >= X and the equivalence contract "
                             "holds")
    args = parser.parse_args(argv)

    if args.smoke:
        matrices = [LARGEST_MATRIX_ID]
        node_counts = [8, 16]
        n = 4000
        reps = 10
        k = 8
    else:
        matrices = matrix_ids()
        node_counts = [8, 16, 32]
        n = int(os.environ.get("REPRO_BENCH_SPMV_N", 16000))
        reps = int(os.environ.get("REPRO_BENCH_SPMV_REPS", 20))
        k = int(os.environ.get("REPRO_BENCH_SPMV_K", 8))

    print(f"SpMV overlap benchmark: matrices={','.join(matrices)} "
          f"nodes={node_counts} n~{n} reps={reps} k={k}")
    results = run_sweep(matrices, node_counts, n, reps, k)

    headline = results["headline"]
    if headline is not None:
        print(
            f"headline: {headline['matrix_id']} at N={headline['n_nodes']}: "
            f"simulated overlap {headline['overlap_sim_speedup']:.2f}x "
            f"({headline['hidden_halo_fraction']:.1%} of halo hidden), "
            f"multi-RHS {headline['multirhs_speedup']:.2f}x, "
            f"deviation={headline['split_rel_deviation']:.2e}"
        )

    ok = (
        all(r["overlap_time_drops"] for r in results["rows"])
        and all(r["multirhs_columns_identical"] for r in results["rows"])
        and all(r["split_rel_deviation"] <= 1e-12 for r in results["rows"])
    )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"wrote {args.json}")
    if not ok:
        print("ERROR: overlap/multi-RHS contract violated", file=sys.stderr)
        return 1
    if args.require_multirhs_speedup is not None:
        if headline is None:
            print("ERROR: no headline configuration was measured",
                  file=sys.stderr)
            return 1
        if headline["multirhs_speedup"] < args.require_multirhs_speedup:
            print(
                f"ERROR: headline multi-RHS speedup "
                f"{headline['multirhs_speedup']:.2f}x below required "
                f"{args.require_multirhs_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
