"""Table 1 -- the SPD test matrices and their structural properties.

Regenerates the paper's Table 1 for the synthetic analogues: matrix id,
original name/problem type/size, and the analogue's size, non-zero count and
non-zeros per row.  The benchmark times the construction of the full suite
(matrix generation is part of every experiment's setup cost).
"""

from __future__ import annotations

import pytest

from repro.harness import render_table1, table1_rows
from repro.matrices import analyze, build_matrix, get_record


def test_table1_report(benchmark, bench_settings, capsys):
    """Print the Table-1 reproduction for the configured suite subset."""
    rows = benchmark.pedantic(
        table1_rows,
        kwargs={"ids": list(bench_settings.matrices),
                "n": bench_settings.matrix_size},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_table1(rows))
        print(f"[settings: {bench_settings.describe()}]")
    # sanity: analogue densities track the originals' ordering
    per_row = {r["id"]: r["analogue_nnz_per_row"] for r in rows}
    originals = {r["id"]: r["original_nnz_per_row"] for r in rows}
    sparse_ids = [mid for mid in per_row if originals[mid] < 10]
    dense_ids = [mid for mid in per_row if originals[mid] > 30]
    if sparse_ids and dense_ids:
        assert max(per_row[m] for m in sparse_ids) < \
            min(per_row[m] for m in dense_ids)


@pytest.mark.parametrize("matrix_id", ["M1", "M3", "M5", "M8"])
def test_benchmark_matrix_generation(benchmark, bench_settings, matrix_id):
    """Time the construction of one synthetic analogue."""
    result = benchmark.pedantic(
        build_matrix, args=(matrix_id,),
        kwargs={"n": bench_settings.matrix_size, "seed": 0},
        rounds=1, iterations=1,
    )
    props = analyze(result)
    record = get_record(matrix_id)
    assert props.symmetric
    assert props.n >= bench_settings.matrix_size * 0.5
    # The analogue preserves the original's sparse/dense character.
    if record.original_nnz_per_row > 30:
        assert props.nnz_per_row_mean > 20
    else:
        assert props.nnz_per_row_mean < 20
