"""Ablation A2 -- ESR versus the baseline recovery strategies.

Compares, for three simultaneous node failures on the M1 and M5 analogues,
the ESR-protected solver against checkpoint/restart, interpolation/restart
(Langou-style local interpolation) and a full restart: total simulated time,
iteration counts and the work each strategy throws away.  This quantifies the
advantage the related-work section of the paper claims for ESR.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    CheckpointConfig,
    CheckpointRestartPCG,
    FullRestartPCG,
    InterpolationRecoveryPCG,
)
from repro.cluster import FailureEvent, FailureInjector
from repro.core.api import distribute_problem, solve
from repro.core.spec import SolveSpec
from repro.harness import format_table
from repro.matrices import build_matrix


def _failure_iteration(reference_iterations: int) -> int:
    return max(2, int(0.5 * reference_iterations))


def _run_baseline(cls, matrix, n_nodes, failure_iteration, failed_ranks, **kwargs):
    problem = distribute_problem(matrix, n_nodes=n_nodes)
    precond = problem.resolve_preconditioner("block_jacobi")
    injector = FailureInjector([FailureEvent(failure_iteration, tuple(failed_ranks))])
    solver = cls(problem.matrix, problem.rhs, precond,
                 failure_injector=injector, context=problem.context, **kwargs)
    return solver.solve()


@pytest.fixture(scope="module")
def comparison(bench_settings):
    phi = 3 if bench_settings.n_nodes > 3 else 1
    failed_ranks = list(range(phi))
    rows = []
    for matrix_id in ("M1", "M5"):
        matrix = build_matrix(matrix_id, n=bench_settings.matrix_size, seed=0)
        reference = solve(matrix, n_nodes=bench_settings.n_nodes,
                          spec=SolveSpec(preconditioner="block_jacobi"))
        failure_iteration = _failure_iteration(reference.iterations)

        esr = solve(
            matrix, n_nodes=bench_settings.n_nodes,
            spec=SolveSpec(preconditioner="block_jacobi"),
            phi=phi, failures=[(failure_iteration, failed_ranks)],
        )
        checkpoint = _run_baseline(
            CheckpointRestartPCG, matrix, bench_settings.n_nodes,
            failure_iteration, failed_ranks,
            config=CheckpointConfig(interval=max(failure_iteration // 2, 1)),
        )
        interpolation = _run_baseline(
            InterpolationRecoveryPCG, matrix, bench_settings.n_nodes,
            failure_iteration, failed_ranks, method="li",
        )
        restart = _run_baseline(
            FullRestartPCG, matrix, bench_settings.n_nodes,
            failure_iteration, failed_ranks,
        )
        for label, result in (("ESR (this paper)", esr),
                              ("checkpoint/restart", checkpoint),
                              ("interpolation/restart (LI)", interpolation),
                              ("full restart", restart)):
            rows.append({
                "matrix": matrix_id,
                "strategy": label,
                "iterations": result.iterations,
                "simulated_time": result.simulated_time,
                "overhead_pct": 100.0 * (result.simulated_time
                                         - reference.simulated_time)
                / reference.simulated_time,
                "converged": result.converged,
                "reference_iterations": reference.iterations,
            })
    return rows


def test_ablation_baselines_report(benchmark, comparison, bench_settings, capsys):
    benchmark.pedantic(lambda: list(comparison), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["matrix", "strategy", "iterations", "sim. time [s]", "overhead [%]"],
            [[r["matrix"], r["strategy"], r["iterations"],
              f"{r['simulated_time']:.4g}", f"{r['overhead_pct']:.1f}"]
             for r in comparison],
            title="Ablation A2: recovery strategies under 3 node failures",
        ))
        print(f"[settings: {bench_settings.describe()}]")
    assert all(r["converged"] for r in comparison)
    by_key = {(r["matrix"], r["strategy"]): r for r in comparison}
    for matrix_id in ("M1", "M5"):
        esr = by_key[(matrix_id, "ESR (this paper)")]
        restart = by_key[(matrix_id, "full restart")]
        interp = by_key[(matrix_id, "interpolation/restart (LI)")]
        # ESR preserves the Krylov space: no strategy converges in fewer
        # iterations, and the full restart pays the most.
        assert esr["iterations"] <= interp["iterations"]
        assert esr["iterations"] < restart["iterations"]
        assert restart["simulated_time"] >= esr["simulated_time"]


def test_benchmark_esr_vs_checkpoint_wallclock(benchmark, bench_settings):
    """Wall-clock of one ESR-protected run (the headline configuration)."""
    matrix = build_matrix("M5", n=bench_settings.matrix_size, seed=0)

    def run():
        return solve(
            matrix, n_nodes=bench_settings.n_nodes,
            preconditioner="block_jacobi",
            phi=3 if bench_settings.n_nodes > 3 else 1,
            failures=[(5, [0, 1, 2] if bench_settings.n_nodes > 3 else [0])],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.converged
