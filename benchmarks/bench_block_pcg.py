"""Benchmark: block-PCG multi-RHS solves and allreduce amortization.

For every configured column count ``k`` this compares, on the virtual
cluster, one block solve of ``A X = B`` against ``k`` sequential solves of
the same columns -- all dispatched through the ``repro.solve`` façade (a
2-D right-hand side selects :class:`~repro.core.block_pcg.BlockPCG`, a 1-D
one :class:`~repro.core.pcg.DistributedPCG`):

* **Equivalence contract** -- per-column iterates and residual histories of
  the block solve must be bit-identical to the sequential solves (same
  execution path, lock-step recurrences with column freezing).
* **Allreduce amortization (simulated)** -- the block solve ships one
  ``k``-scalar allreduce per reduction, so its allreduce *message* count per
  iteration is independent of ``k`` while the sequential solves pay the full
  tree latency ``k`` times; the simulated allreduce time ratio approaches
  ``k`` in the latency-bound regime of Sec. 4.2.
* **Wallclock amortization** -- the block solve batches the SpMV, the block
  BLAS-1 and the preconditioner application over the columns (one NumPy
  kernel per rank instead of ``k``), so one block solve is faster than ``k``
  sequential solves end to end.
* **Reduction fusing** -- each case additionally runs with
  ``BlockSpec(fuse_reductions=True)`` (the trailing ``R^T Z`` / ``R^T R``
  pair shipped as one ``2k``-wide collective): iterates must stay
  bit-identical while the allreduce message count drops by ~1/3.

Usage::

    python benchmarks/bench_block_pcg.py                  # full sweep
    python benchmarks/bench_block_pcg.py --smoke          # CI smoke run
    python benchmarks/bench_block_pcg.py --json out.json  # machine-readable

Environment knobs (full mode): ``REPRO_BENCH_BPCG_N`` (matrix size, default
8000), ``REPRO_BENCH_BPCG_NODES`` (cluster size, default 16),
``REPRO_BENCH_BPCG_KS`` (comma-separated column counts, default "1,4,8").
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - uninstalled checkout
        sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.cluster import MachineModel  # noqa: E402
from repro.cluster.cost_model import Phase  # noqa: E402
from repro.core import BlockSpec, SolveSpec, distribute_problem, solve  # noqa: E402
from repro.distributed import (  # noqa: E402
    DistributedMultiVector,
    DistributedVector,
)
from repro.matrices import build_matrix  # noqa: E402
from repro.matrices.suite import get_record, matrix_ids  # noqa: E402

#: The matrix with the largest original problem size (Table 1): M3/G3_circuit.
LARGEST_MATRIX_ID = max(
    matrix_ids(), key=lambda mid: get_record(mid).original_n
)


def _fresh_problem(matrix, n_nodes: int):
    """A fresh distributed problem on its own cluster (jitter off)."""
    return distribute_problem(matrix, n_nodes=n_nodes,
                              machine=MachineModel(jitter_rel_std=0.0))


def run_case(matrix_id: str, n: int, n_nodes: int, k: int, rtol: float,
             max_iterations: int, seed: int = 0) -> Dict[str, object]:
    """Benchmark one (matrix, k) configuration: block vs. k sequential."""
    matrix = build_matrix(matrix_id, n=n, seed=seed)
    n_actual = matrix.shape[0]
    rng = np.random.default_rng(seed)
    rhs_global = rng.standard_normal((n_actual, k))
    spec = SolveSpec(preconditioner="block_jacobi", rtol=rtol,
                     max_iterations=max_iterations)

    # -- one block solve (the 2-D rhs dispatches to BlockPCG) ---------------
    # One-time setup -- preconditioner factorization (warmed into the
    # problem's cache) and RHS distribution -- stays outside the timed
    # region so the wallclock numbers compare solver time only.
    problem = _fresh_problem(matrix, n_nodes)
    problem.resolve_preconditioner(spec.preconditioner)
    rhs_block = DistributedMultiVector.from_global(
        problem.cluster, problem.partition, "B", rhs_global)
    start = time.perf_counter()
    block_result = solve(problem, rhs_block, spec=spec)
    t_block = time.perf_counter() - start
    ledger = problem.cluster.ledger
    block_allreduce_time = ledger.times.get(Phase.ALLREDUCE_COMM, 0.0)
    block_allreduce_msgs = ledger.messages.get(Phase.ALLREDUCE_COMM, 0)
    block_sim_time = block_result.simulated_time

    # -- the same block solve with fused trailing reductions ----------------
    problem = _fresh_problem(matrix, n_nodes)
    fused_result = solve(problem, rhs_global,
                         spec=spec.with_overrides(fuse_reductions=True))
    ledger = problem.cluster.ledger
    fused_allreduce_time = ledger.times.get(Phase.ALLREDUCE_COMM, 0.0)
    fused_allreduce_msgs = ledger.messages.get(Phase.ALLREDUCE_COMM, 0)

    # -- k sequential solves ------------------------------------------------
    problem = _fresh_problem(matrix, n_nodes)
    problem.resolve_preconditioner(spec.preconditioner)
    seq_rhs = [
        DistributedVector.from_global(problem.cluster, problem.partition,
                                      f"b{j}", rhs_global[:, j])
        for j in range(k)
    ]
    start = time.perf_counter()
    seq_results = [solve(problem, rhs_j, spec=spec) for rhs_j in seq_rhs]
    t_seq = time.perf_counter() - start
    ledger = problem.cluster.ledger
    seq_allreduce_time = ledger.times.get(Phase.ALLREDUCE_COMM, 0.0)
    seq_allreduce_msgs = ledger.messages.get(Phase.ALLREDUCE_COMM, 0)
    seq_sim_time = float(sum(r.simulated_time for r in seq_results))

    # -- equivalence contract ----------------------------------------------
    histories_identical = all(
        block_result.residual_histories[j] == seq_results[j].residual_norms
        for j in range(k)
    )
    iterates_identical = all(
        np.array_equal(block_result.x[:, j], seq_results[j].x)
        for j in range(k)
    )
    # Fusing must not change the numbers, only the collective count.
    fused_identical = (
        fused_result.residual_histories == block_result.residual_histories
        and np.array_equal(fused_result.x, block_result.x)
    )
    # Allreduce messages per reduction must not depend on k: each of the
    # solver's batched reductions is a single collective whatever the column
    # count.  The solver reports its actual reduction count (an all-columns
    # breakdown aborts an iteration after its first reduction, so deriving
    # the count from global_iterations alone would under-count).
    n_reductions = int(block_result.info["n_reductions"])
    n_reductions_fused = int(fused_result.info["n_reductions"])
    msgs_per_reduction = (block_allreduce_msgs / n_reductions
                          if n_reductions else 0.0)

    return {
        "matrix_id": matrix_id,
        "n": int(n_actual),
        "nnz": int(matrix.nnz),
        "n_nodes": int(n_nodes),
        "k": int(k),
        "rtol": rtol,
        "iterations": list(block_result.iterations),
        "all_converged": bool(block_result.all_converged),
        "histories_identical": bool(histories_identical),
        "iterates_identical": bool(iterates_identical),
        "allreduce_msgs_block": int(block_allreduce_msgs),
        "allreduce_msgs_sequential": int(seq_allreduce_msgs),
        "allreduce_msgs_per_reduction": msgs_per_reduction,
        "allreduce_sim_time_block": block_allreduce_time,
        "allreduce_sim_time_sequential": seq_allreduce_time,
        "allreduce_sim_speedup": (seq_allreduce_time / block_allreduce_time
                                  if block_allreduce_time else 1.0),
        "sim_time_block": block_sim_time,
        "sim_time_sequential": seq_sim_time,
        "sim_speedup": (seq_sim_time / block_sim_time
                        if block_sim_time else 1.0),
        "wallclock_block_s": t_block,
        "wallclock_sequential_s": t_seq,
        "wallclock_speedup": (t_seq / t_block if t_block else 1.0),
        # fused-reduction mode (BlockSpec(fuse_reductions=True))
        "fused_identical": bool(fused_identical),
        "n_reductions": n_reductions,
        "n_reductions_fused": n_reductions_fused,
        "allreduce_msgs_fused": int(fused_allreduce_msgs),
        "allreduce_sim_time_fused": fused_allreduce_time,
        "sim_time_fused": fused_result.simulated_time,
        "fused_allreduce_msg_ratio": (fused_allreduce_msgs
                                      / block_allreduce_msgs
                                      if block_allreduce_msgs else 1.0),
    }


def run_sweep(matrix_id: str, n: int, n_nodes: int, ks: List[int],
              rtol: float, max_iterations: int) -> Dict[str, object]:
    rows = []
    for k in ks:
        row = run_case(matrix_id, n, n_nodes, k, rtol, max_iterations)
        rows.append(row)
        print(
            f"  {row['matrix_id']:>3}  n={row['n']:>7,}  N={row['n_nodes']:>3}  "
            f"k={row['k']:>2}  "
            f"allreduce_sim={row['allreduce_sim_speedup']:>5.2f}x  "
            f"sim={row['sim_speedup']:>5.2f}x  "
            f"wall={row['wallclock_speedup']:>5.2f}x  "
            f"fused_msgs={row['fused_allreduce_msg_ratio']:>5.2f}x  "
            f"identical={row['histories_identical'] and row['iterates_identical'] and row['fused_identical']}"
        )
    return {
        "matrix_id": matrix_id,
        "target_n": n,
        "n_nodes": n_nodes,
        "ks": ks,
        "rtol": rtol,
        "headline": _headline(rows),
        "rows": rows,
    }


def _headline(rows: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """The largest measured column count (the amortization showcase)."""
    if not rows:
        return None
    best = max(rows, key=lambda r: int(r["k"]))
    return {
        "matrix_id": best["matrix_id"],
        "n_nodes": best["n_nodes"],
        "k": best["k"],
        "allreduce_sim_speedup": best["allreduce_sim_speedup"],
        "sim_speedup": best["sim_speedup"],
        "wallclock_speedup": best["wallclock_speedup"],
        "histories_identical": best["histories_identical"],
        "iterates_identical": best["iterates_identical"],
        "fused_identical": best["fused_identical"],
        "fused_allreduce_msg_ratio": best["fused_allreduce_msg_ratio"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI configuration (small size, M3 only)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the headline wallclock "
                             "speedup is >= X and the equivalence contract "
                             "holds")
    args = parser.parse_args(argv)

    if args.smoke:
        matrix_id = LARGEST_MATRIX_ID
        n = 2000
        n_nodes = 8
        ks = [1, 4, 8]
        rtol = 1e-6
        max_iterations = 300
    else:
        matrix_id = LARGEST_MATRIX_ID
        n = int(os.environ.get("REPRO_BENCH_BPCG_N", 8000))
        n_nodes = int(os.environ.get("REPRO_BENCH_BPCG_NODES", 16))
        ks = [int(v) for v in
              os.environ.get("REPRO_BENCH_BPCG_KS", "1,4,8").split(",")]
        rtol = 1e-8
        max_iterations = 2000

    print(f"Block-PCG benchmark: matrix={matrix_id} n~{n} N={n_nodes} "
          f"ks={ks} rtol={rtol}")
    results = run_sweep(matrix_id, n, n_nodes, ks, rtol, max_iterations)

    headline = results["headline"]
    if headline is not None:
        print(
            f"headline: {headline['matrix_id']} at N={headline['n_nodes']}, "
            f"k={headline['k']}: allreduce "
            f"{headline['allreduce_sim_speedup']:.2f}x, simulated "
            f"{headline['sim_speedup']:.2f}x, wallclock "
            f"{headline['wallclock_speedup']:.2f}x vs sequential; fused "
            f"reductions ship {headline['fused_allreduce_msg_ratio']:.2f}x "
            f"the allreduce messages"
        )

    ok = all(
        r["histories_identical"] and r["iterates_identical"]
        and r["fused_identical"]
        and r["allreduce_msgs_per_reduction"]
        == results["rows"][0]["allreduce_msgs_per_reduction"]
        and r["allreduce_msgs_fused"] < r["allreduce_msgs_block"]
        for r in results["rows"]
    )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"wrote {args.json}")
    if not ok:
        print("ERROR: block-PCG equivalence/amortization contract violated",
              file=sys.stderr)
        return 1
    if args.require_speedup is not None:
        if headline is None or \
                headline["wallclock_speedup"] < args.require_speedup:
            print(
                f"ERROR: headline wallclock speedup below required "
                f"{args.require_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
