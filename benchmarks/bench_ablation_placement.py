"""Ablation A1 -- backup-node placement strategies.

The paper selects the backup nodes with the alternating-neighbour heuristic
of Eqn. (5) and notes that the optimal choice for general sparsity patterns is
future work.  This ablation compares the paper's placement against a naive
"next phi ranks" placement and a random placement, in terms of (i) the extra
redundancy traffic and extra latency-paying messages predicted by the
Sec.-4.2 analysis and (ii) the measured undisturbed overhead of the resilient
solver.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_overhead
from repro.core.api import distribute_problem, solve
from repro.core.redundancy import BackupPlacement
from repro.core.spec import ResilienceSpec, SolveSpec
from repro.harness import format_table
from repro.matrices import build_matrix

PLACEMENTS = (BackupPlacement.PAPER, BackupPlacement.NEXT_RANKS,
              BackupPlacement.RANDOM)


@pytest.fixture(scope="module")
def ablation_data(bench_settings):
    phi = 3 if bench_settings.n_nodes > 3 else 1
    rows = []
    for matrix_id in ("M3", "M5"):
        matrix = build_matrix(matrix_id, n=bench_settings.matrix_size, seed=0)
        reference = solve(matrix, n_nodes=bench_settings.n_nodes,
                          spec=SolveSpec(preconditioner="block_jacobi"))
        for placement in PLACEMENTS:
            problem = distribute_problem(matrix, n_nodes=bench_settings.n_nodes)
            analysis = analyze_overhead(problem.matrix, phi,
                                        placement=placement,
                                        context=problem.context)
            result = solve(problem, spec=SolveSpec(
                preconditioner="block_jacobi",
                resilience=ResilienceSpec(phi=phi, placement=placement)))
            rows.append({
                "matrix": matrix_id,
                "placement": placement.value,
                "extra_elements": analysis.total_extra_elements,
                "extra_messages": analysis.extra_messages,
                "undisturbed_overhead_pct": 100.0 * (
                    result.simulated_time - reference.simulated_time
                ) / reference.simulated_time,
                "converged": result.converged,
            })
    return phi, rows


def test_ablation_placement_report(benchmark, ablation_data, bench_settings, capsys):
    phi, rows = ablation_data
    benchmark.pedantic(lambda: list(rows), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["matrix", "placement", "extra elems/iter", "extra msgs/iter",
             "undist. overhead [%]"],
            [[r["matrix"], r["placement"], r["extra_elements"],
              r["extra_messages"], f"{r['undisturbed_overhead_pct']:.2f}"]
             for r in rows],
            title=f"Ablation A1: backup placement (phi={phi})",
        ))
        print(f"[settings: {bench_settings.describe()}]")
    assert all(r["converged"] for r in rows)
    # The paper placement never pays more extra latency messages than the
    # random placement on the band-dominated matrix M5 (neighbouring ranks
    # are exactly the nodes the SpMV talks to anyway).
    by_key = {(r["matrix"], r["placement"]): r for r in rows}
    assert by_key[("M5", "paper")]["extra_messages"] <= \
        by_key[("M5", "random")]["extra_messages"]


def test_benchmark_scheme_construction(benchmark, bench_settings):
    """Time the redundancy-scheme construction (per-run setup cost)."""
    from repro.core.redundancy import RedundancyScheme

    matrix = build_matrix("M5", n=bench_settings.matrix_size, seed=0)
    problem = distribute_problem(matrix, n_nodes=bench_settings.n_nodes)
    phi = max(p for p in bench_settings.phis if p < bench_settings.n_nodes)

    scheme = benchmark.pedantic(
        RedundancyScheme, args=(problem.context, phi), rounds=1, iterations=1,
    )
    assert scheme.verify_invariant()
