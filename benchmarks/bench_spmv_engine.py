"""Wallclock benchmark: local-view SpMV engine vs. dense-gather reference.

For every configured (matrix, node count) pair this times ``distributed_spmv``
through the cached :class:`~repro.distributed.spmv_engine.SpmvEngine`
(``engine=True``) and through the dense-gather reference path
(``engine=False``) on twin virtual clusters, and verifies the two paths'
equivalence contract:

* **bit-identical simulated-time charges** -- the per-phase ledger times,
  message and element counters of the two runs must compare equal with
  ``==`` (the cost model is unchanged by the engine);
* **numeric deviation** -- the max-abs difference of the results (the engine
  preserves the CSR stored-entry order, so this is expected to be ``0.0``,
  far below the ``1e-12`` acceptance bound).

The headline number is the speedup on the largest suite matrix (M3 /
G3_circuit by original size) at the largest configured node count.

Usage::

    python benchmarks/bench_spmv_engine.py                  # full sweep
    python benchmarks/bench_spmv_engine.py --smoke          # CI smoke run
    python benchmarks/bench_spmv_engine.py --json out.json  # machine-readable

Environment knobs (full mode): ``REPRO_BENCH_SPMV_N`` (matrix size, default
16000), ``REPRO_BENCH_SPMV_REPS`` (timed calls per measurement, default 20).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - uninstalled checkout
        sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.cluster import MachineModel, VirtualCluster  # noqa: E402
from repro.distributed import (  # noqa: E402
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedVector,
    distributed_spmv,
)
from repro.matrices import build_matrix  # noqa: E402
from repro.matrices.suite import get_record, matrix_ids  # noqa: E402

#: The matrix with the largest original problem size (Table 1): M3/G3_circuit.
LARGEST_MATRIX_ID = max(
    matrix_ids(), key=lambda mid: get_record(mid).original_n
)


def _timed_loop(fn, reps: int, repeats: int = 3) -> float:
    """Median over *repeats* of the mean per-call wallclock of *reps* calls."""
    fn()  # warmup: builds/caches the engine, touches all buffers
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - start) / reps)
    return float(np.median(samples))


def run_case(matrix_id: str, n: int, n_nodes: int, reps: int,
             seed: int = 0) -> Dict[str, object]:
    """Benchmark one (matrix, node count) configuration on twin clusters."""
    matrix = build_matrix(matrix_id, n=n, seed=seed)
    n_actual = matrix.shape[0]
    partition = BlockRowPartition(n_actual, n_nodes)
    values = np.random.default_rng(seed).standard_normal(n_actual)

    sides = {}
    for label in ("engine", "reference"):
        cluster = VirtualCluster(n_nodes,
                                 machine=MachineModel(jitter_rel_std=0.0))
        dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
        context = CommunicationContext.from_matrix(dist)
        x = DistributedVector.from_global(cluster, partition, "x", values)
        y = DistributedVector.zeros(cluster, partition, "y")
        sides[label] = (cluster, dist, context, x, y)

    def engine_call():
        cluster, dist, context, x, y = sides["engine"]
        distributed_spmv(dist, x, y, context, engine=True)

    def reference_call():
        cluster, dist, context, x, y = sides["reference"]
        distributed_spmv(dist, x, y, context, engine=False)

    t_engine = _timed_loop(engine_call, reps)
    t_reference = _timed_loop(reference_call, reps)

    led_engine = sides["engine"][0].ledger
    led_reference = sides["reference"][0].ledger
    # Both sides executed the same number of charged calls (warmup + timed),
    # so their ledgers must compare equal bit for bit.
    charges_identical = (
        led_engine.times == led_reference.times
        and led_engine.messages == led_reference.messages
        and led_engine.elements == led_reference.elements
    )
    deviation = float(np.max(np.abs(
        sides["engine"][4].to_global() - sides["reference"][4].to_global()
    )))

    return {
        "matrix_id": matrix_id,
        "n": int(n_actual),
        "nnz": int(matrix.nnz),
        "n_nodes": int(n_nodes),
        "scatter_messages": int(sides["engine"][2].total_messages()),
        "scatter_elements": int(sides["engine"][2].total_exchanged_elements()),
        "engine_us_per_call": t_engine * 1e6,
        "reference_us_per_call": t_reference * 1e6,
        "speedup": t_reference / t_engine,
        "charges_bit_identical": bool(charges_identical),
        "max_abs_deviation": deviation,
    }


def run_sweep(matrices: List[str], node_counts: List[int], n: int,
              reps: int) -> Dict[str, object]:
    rows = []
    for matrix_id in matrices:
        for n_nodes in node_counts:
            row = run_case(matrix_id, n, n_nodes, reps)
            rows.append(row)
            print(
                f"  {row['matrix_id']:>3}  n={row['n']:>7,}  "
                f"N={row['n_nodes']:>3}  "
                f"reference={row['reference_us_per_call']:>9.1f} us  "
                f"engine={row['engine_us_per_call']:>9.1f} us  "
                f"speedup={row['speedup']:>6.2f}x  "
                f"dev={row['max_abs_deviation']:.2e}  "
                f"charges={'ok' if row['charges_bit_identical'] else 'DIFF'}"
            )
    headline = _headline(rows)
    return {
        "target_n": n,
        "reps": reps,
        "largest_matrix_id": LARGEST_MATRIX_ID,
        "headline": headline,
        "rows": rows,
    }


def _headline(rows: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """Largest suite matrix at the largest node count >= 8 (if measured)."""
    candidates = [
        r for r in rows
        if r["matrix_id"] == LARGEST_MATRIX_ID and int(r["n_nodes"]) >= 8
    ]
    if not candidates:
        return None
    best = max(candidates, key=lambda r: int(r["n_nodes"]))
    return {
        "matrix_id": best["matrix_id"],
        "n_nodes": best["n_nodes"],
        "speedup": best["speedup"],
        "charges_bit_identical": best["charges_bit_identical"],
        "max_abs_deviation": best["max_abs_deviation"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI configuration (small sizes, M3 only)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the headline speedup "
                             "(largest matrix, largest node count) is >= X "
                             "and the equivalence contract holds")
    args = parser.parse_args(argv)

    if args.smoke:
        matrices = [LARGEST_MATRIX_ID]
        node_counts = [8, 16]
        n = 4000
        reps = 10
    else:
        matrices = matrix_ids()
        node_counts = [8, 16, 32]
        n = int(os.environ.get("REPRO_BENCH_SPMV_N", 16000))
        reps = int(os.environ.get("REPRO_BENCH_SPMV_REPS", 20))

    print(f"SpMV engine benchmark: matrices={','.join(matrices)} "
          f"nodes={node_counts} n~{n} reps={reps}")
    results = run_sweep(matrices, node_counts, n, reps)

    headline = results["headline"]
    if headline is not None:
        print(
            f"headline: {headline['matrix_id']} at N={headline['n_nodes']}: "
            f"{headline['speedup']:.2f}x speedup, "
            f"deviation={headline['max_abs_deviation']:.2e}, charges "
            f"{'bit-identical' if headline['charges_bit_identical'] else 'DIFFER'}"
        )

    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2))
        print(f"wrote {args.json}")

    ok = all(r["charges_bit_identical"] for r in results["rows"]) and \
        all(r["max_abs_deviation"] <= 1e-12 for r in results["rows"])
    if not ok:
        print("ERROR: equivalence contract violated", file=sys.stderr)
        return 1
    if args.require_speedup is not None:
        if headline is None:
            print("ERROR: no headline configuration was measured",
                  file=sys.stderr)
            return 1
        if headline["speedup"] < args.require_speedup:
            print(
                f"ERROR: headline speedup {headline['speedup']:.2f}x below "
                f"required {args.require_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
