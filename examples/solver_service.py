#!/usr/bin/env python3
"""Solver-as-a-service: a traffic burst coalesced into block solves.

The other examples call ``repro.solve`` directly; this one puts the
:class:`repro.SolverService` in front of it.  A seeded burst of requests
from three tenants lands on one registered operator; the coalescing
scheduler groups compatible requests into ``(n, k)`` block solves (one
allreduce per reduction instead of ``k``), resolves every request with the
bit-identical per-column result, and attributes the batch's simulated cost
back to the tenants -- volume terms by column work, message terms amortized
across the batch.

Run with:  python examples/solver_service.py
"""

import numpy as np

import repro
from repro import SolveSpec, SolverService, TrafficSpec, generate_traffic
from repro.cluster import MachineModel
from repro.matrices import poisson_2d

MATRIX_ID = "poisson2d-24"
K_MAX = 8
SEED = 7


def main() -> None:
    matrix = poisson_2d(24)
    n = matrix.shape[0]
    spec = SolveSpec(preconditioner="block_jacobi", rtol=1e-8)

    service = SolverService(policy="greedy_width", k_max=K_MAX)
    service.register_matrix(
        MATRIX_ID,
        repro.distribute_problem(matrix, n_nodes=4, seed=0,
                                 machine=MachineModel(jitter_rel_std=0.0)),
        default_spec=spec,
    )

    # A seeded burst: 20 requests from three tenants, arriving at once.
    trace = generate_traffic(
        TrafficSpec(n_requests=20, matrix_ids=(MATRIX_ID,),
                    tenants=("alice", "bob", "carol")),
        {MATRIX_ID: n}, seed=SEED,
    )
    handles = [service.submit(MATRIX_ID, req.rhs, tenant=req.tenant)
               for req in trace]
    service.drain()
    results = [handle.result() for handle in handles]

    print(f"{len(results)} requests over {service.stats.n_batches} batches "
          f"(widths {service.stats.batch_widths}), all converged: "
          f"{all(r.converged for r in results)}")

    # The contract: riding in a batch changes nothing numerically.  Column
    # results are bit-identical to a one-at-a-time repro.solve.
    req, res = trace[0], results[0]
    reference = repro.solve(service.problem(MATRIX_ID), req.rhs, spec=spec)
    print(f"request 0 rode batch {res.batch_id} at width {res.batch_width}; "
          f"bit-identical to direct solve: "
          f"{np.array_equal(res.x, reference.x)}")

    # Per-tenant cost ledger: exact attribution of the batch charges.
    aggregate = service.stats.aggregate()
    print(f"\nsimulated time charged: {aggregate['simulated_time']:.4f}s, "
          f"attributed per tenant:")
    for name, usage in aggregate["tenants"].items():
        comm = sum(v for k, v in usage["charges"].items()
                   if k.startswith("comm."))
        print(f"  {name:>6}: {usage['n_requests']:>2} requests, "
              f"{usage['iterations']:>4} iterations, "
              f"{usage['simulated_time']:.4f}s simulated "
              f"({comm:.4f}s comm, amortized over batch peers)")

    service.shutdown()
    print("\nSame solves, one service: batching amortizes the allreduce "
          "latency the paper's block solver was built around.")


if __name__ == "__main__":
    main()
