#!/usr/bin/env python3
"""Quickstart: protect a PCG solve against node failures with ESR.

Builds a small SPD system (2-D Poisson), distributes it over a virtual
8-node cluster, and solves it twice:

* once with the plain (non-resilient) distributed PCG solver, and
* once with the ESR-protected solver keeping phi = 3 redundant copies, while
  three nodes fail simultaneously halfway through the solve.

Both runs converge to the same solution; the resilient run reports the
simulated-time overhead of the redundancy and of the reconstruction.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. An SPD test problem: 60 x 60 Poisson grid (n = 3600 unknowns).
    matrix = repro.matrices.poisson_2d(60)
    rhs = matrix @ np.ones(matrix.shape[0])          # exact solution = ones

    # 2. Reference run: plain distributed PCG on 8 virtual nodes.
    problem = repro.distribute_problem(matrix, rhs, n_nodes=8, seed=0)
    reference = repro.reference_solve(problem, preconditioner="block_jacobi")
    print("reference PCG   :", reference.summary())
    print(f"  simulated time: {reference.simulated_time * 1e3:.2f} ms")

    # 3. Resilient run: phi = 3 redundant copies, three nodes fail at
    #    iteration 20 (they lose all their dynamic data and are replaced).
    problem = repro.distribute_problem(matrix, rhs, n_nodes=8, seed=1)
    resilient = repro.resilient_solve(
        problem,
        phi=3,
        preconditioner="block_jacobi",
        failures=[(20, [3, 4, 5])],
    )
    print("resilient PCG   :", resilient.summary())
    print(f"  simulated time: {resilient.simulated_time * 1e3:.2f} ms "
          f"(recovery: {resilient.simulated_recovery_time * 1e3:.2f} ms)")
    print(f"  failures recovered: {resilient.n_failures_recovered}")

    # 4. The recovered run reaches the same solution as the reference run.
    difference = np.linalg.norm(resilient.x - reference.x) / np.linalg.norm(reference.x)
    overhead = (resilient.simulated_time - reference.simulated_time) \
        / reference.simulated_time
    print(f"relative solution difference: {difference:.2e}")
    print(f"total overhead vs. reference: {overhead:.1%}")
    print(f"residual deviation (Eqn. 7): "
          f"{repro.core.residual_difference_of(resilient):+.2e}")


if __name__ == "__main__":
    main()
