#!/usr/bin/env python3
"""Quickstart: protect a PCG solve against node failures with ESR.

Builds a small SPD system (2-D Poisson), distributes it over a virtual
8-node cluster, and drives everything through the one entry point
``repro.solve``:

* a plain (non-resilient) distributed PCG run -- the default ``SolveSpec``;
* the ESR-protected solver keeping phi = 3 redundant copies while three
  nodes fail simultaneously halfway through the solve -- the same spec plus
  a ``ResilienceSpec``;
* a multi-RHS block solve -- an ``(n, k)`` right-hand-side block dispatches
  to the block PCG automatically.

Both single-RHS runs converge to the same solution; the resilient run
reports the simulated-time overhead of the redundancy and reconstruction.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. An SPD test problem: 60 x 60 Poisson grid (n = 3600 unknowns).
    matrix = repro.matrices.poisson_2d(60)
    rhs = matrix @ np.ones(matrix.shape[0])          # exact solution = ones

    # 2. Reference run: plain distributed PCG on 8 virtual nodes.  The
    #    default SolveSpec selects the plain solver with block Jacobi.
    problem = repro.distribute_problem(matrix, rhs, n_nodes=8, seed=0)
    reference = repro.solve(problem, spec=repro.SolveSpec())
    print("reference PCG   :", reference.summary())
    print(f"  simulated time: {reference.simulated_time * 1e3:.2f} ms")

    # 3. Resilient run: phi = 3 redundant copies, three nodes fail at
    #    iteration 20 (they lose all their dynamic data and are replaced).
    #    Attaching a ResilienceSpec selects the ESR-protected solver.
    problem = repro.distribute_problem(matrix, rhs, n_nodes=8, seed=1)
    resilient = repro.solve(problem, spec=repro.SolveSpec(
        preconditioner="block_jacobi",
        resilience=repro.ResilienceSpec(phi=3, failures=[(20, [3, 4, 5])]),
    ))
    print("resilient PCG   :", resilient.summary())
    print(f"  simulated time: {resilient.simulated_time * 1e3:.2f} ms "
          f"(recovery: {resilient.simulated_recovery_time * 1e3:.2f} ms)")
    print(f"  failures recovered: {resilient.n_failures_recovered}")

    # 4. The recovered run reaches the same solution as the reference run.
    difference = np.linalg.norm(resilient.x - reference.x) / np.linalg.norm(reference.x)
    overhead = (resilient.simulated_time - reference.simulated_time) \
        / reference.simulated_time
    print(f"relative solution difference: {difference:.2e}")
    print(f"total overhead vs. reference: {overhead:.1%}")
    print(f"residual deviation (Eqn. 7): "
          f"{repro.core.residual_difference_of(resilient):+.2e}")

    # 5. Multi-RHS: an (n, k) right-hand-side block dispatches to the block
    #    PCG -- one halo exchange and one k-wide allreduce per reduction,
    #    whatever the column count.
    block_rhs = np.column_stack([rhs, 0.5 * rhs, matrix @ rhs])
    block = repro.solve(matrix, block_rhs, n_nodes=8, seed=0)
    print(f"\nblock PCG (k={block_rhs.shape[1]}): "
          f"converged={block.all_converged}, iterations={block.iterations}, "
          f"simulated time {block.simulated_time * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
