#!/usr/bin/env python3
"""Compare ESR against checkpoint/restart, interpolation/restart and full restart.

Reproduces, on a small thermal-style problem, the comparison implicit in the
paper's related-work discussion (Sec. 1.2): how much work each recovery
strategy loses when three nodes fail mid-solve, and what it pays in the
failure-free case.

Run with:  python examples/compare_recovery_strategies.py
"""

import repro
from repro.baselines import (
    CheckpointConfig,
    CheckpointRestartPCG,
    FullRestartPCG,
    InterpolationRecoveryPCG,
)
from repro.cluster import FailureEvent, FailureInjector
from repro.harness import format_table


N_NODES = 12
FAILED_RANKS = (5, 6, 7)


def run_baseline(cls, matrix, failure_iteration, **kwargs):
    problem = repro.distribute_problem(matrix, n_nodes=N_NODES)
    precond = problem.resolve_preconditioner("block_jacobi")
    injector = FailureInjector([FailureEvent(failure_iteration, FAILED_RANKS)])
    solver = cls(problem.matrix, problem.rhs, precond,
                 failure_injector=injector, context=problem.context, **kwargs)
    return solver.solve()


def main() -> None:
    matrix = repro.matrices.build_matrix("M4", n=5000, seed=0)
    print(f"thermal-style analogue: n = {matrix.shape[0]:,}, "
          f"nnz = {matrix.nnz:,}")

    reference = repro.solve(matrix, n_nodes=N_NODES,
                            preconditioner="block_jacobi")
    failure_iteration = max(2, reference.iterations // 2)
    print(f"reference: {reference.summary()}")
    print(f"three nodes {list(FAILED_RANKS)} fail at iteration "
          f"{failure_iteration}\n")

    # Attaching a ResilienceSpec (here via the phi/failures shorthand
    # overrides) selects the ESR-protected solver.
    esr = repro.solve(
        matrix, n_nodes=N_NODES, preconditioner="block_jacobi",
        phi=3, failures=[(failure_iteration, list(FAILED_RANKS))],
    )
    checkpoint = run_baseline(
        CheckpointRestartPCG, matrix, failure_iteration,
        config=CheckpointConfig(interval=max(failure_iteration // 2, 1)),
    )
    interpolation = run_baseline(InterpolationRecoveryPCG, matrix,
                                 failure_iteration, method="li")
    restart = run_baseline(FullRestartPCG, matrix, failure_iteration)

    rows = []
    for label, result in (
        ("ESR (this paper)", esr),
        ("checkpoint/restart", checkpoint),
        ("interpolation/restart (LI)", interpolation),
        ("full restart", restart),
    ):
        overhead = 100 * (result.simulated_time - reference.simulated_time) \
            / reference.simulated_time
        rows.append([
            label,
            result.iterations,
            f"{result.simulated_time * 1e3:.2f}",
            f"{overhead:.1f}",
            "yes" if result.converged else "NO",
        ])
    print(format_table(
        ["strategy", "iterations", "sim. time [ms]", "overhead vs t0 [%]",
         "converged"],
        rows,
        title="Recovery strategies under three simultaneous node failures",
    ))
    print("\nESR resumes from the exact pre-failure state; every alternative "
          "either repeats iterations (checkpointing,\nrestart) or loses the "
          "Krylov subspace (interpolation) and therefore needs more work "
          "after the failure.")


if __name__ == "__main__":
    main()
