#!/usr/bin/env python3
"""Monte-Carlo reliability campaign over stochastic correlated failures.

The deterministic examples inject one hand-written failure schedule; this
one asks the distributional question operators actually care about: *what
fraction of solves survives* a stochastic failure process of independent
node lifetimes plus correlated rack-level bursts, and what does placement
buy?  It runs two small pinned-seed campaigns -- the paper's Eqn.-(5)
placement vs. the rack-aware spreading strategy -- at equal storage
overhead (same phi) and prints the aggregated survival statistics.

Run with:  python examples/reliability_campaign.py
"""

from repro.failures import LifetimeModel, TraceSpec, generate_trace
from repro.harness import CampaignSpec, run_campaign

N_RUNS = 24
SEED = 11


def campaign(placement: str) -> CampaignSpec:
    # M3 at n=160 over 8 nodes converges failure-free in ~32 iterations;
    # the trace horizon covers that window, with one whole-rack burst per
    # ~25 iterations in expectation on top of exponential node lifetimes.
    return CampaignSpec(
        matrix_id="M3", matrix_size=160, n_nodes=8, phi=3,
        placement=placement, rack_size=4, rtol=1e-8,
        trace=TraceSpec(n_nodes=8, horizon=30, burst_rate=0.04, rack_size=4,
                        lifetime=LifetimeModel(scale=400.0)),
        n_runs=N_RUNS, seed=SEED,
    )


def main() -> None:
    # One sample trace, to show what the campaign feeds each run.
    spec = campaign("paper")
    trace = generate_trace(spec.trace, seed=spec.run_seed(0))
    print(f"sample trace (run 0): {trace.n_failures} node failures "
          f"in {len(trace.events)} events")
    for event in trace.to_failure_events():
        print(f"  iteration {event.iteration:>3}: ranks "
              f"{list(event.ranks)}  [{event.label}]")
    print()

    for placement in ("paper", "rack_aware"):
        result = run_campaign(campaign(placement), workers=2)
        aggregate = result.aggregate()
        overhead = aggregate["overhead_pct"]
        print(f"{placement:>10}: survival "
              f"{aggregate['survival_probability']:.3f}, unrecoverable "
              f"{aggregate['unrecoverable_probability']:.3f}, "
              f"{aggregate['recoveries']['total']} recoveries"
              + (f", overhead p50 {overhead['p50']:.0f}%"
                 if overhead else ""))

    print("\nSame phi, same traces: spreading the redundant copies across "
          "racks is what turns correlated bursts survivable.")


if __name__ == "__main__":
    main()
