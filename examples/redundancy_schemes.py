#!/usr/bin/env python3
"""Compare redundancy schemes: full copies vs Reed-Solomon parity stripes.

The paper's ESR protocol (Sec. 4.1) stores ``phi`` full off-node copies of
every retained block, paying ``phi * n`` extra storage to survive ``phi``
simultaneous failures.  The ``rs_parity`` scheme keeps one owner snapshot
plus ``m = phi`` RS(g+m, g) parity rows per rack-spanning stripe of ``g``
blocks instead, cutting the marginal cost per tolerated failure from a full
copy (``n`` elements) to roughly ``n / g`` -- while recovery stays bit-exact,
so the reconstructed Krylov state is *identical* to the copies path.

Run with:  python examples/redundancy_schemes.py
"""

import numpy as np

import repro
from repro.core import build_redundancy_scheme
from repro.harness import format_table


N_NODES = 12
PHI = 2
GROUP_SIZE = 4
FAILED_RANKS = (1, 6)

SCHEMES = (
    ("copies", {}),
    ("rs_parity", {"group_size": GROUP_SIZE}),
)


def scheme_options_for(name, options):
    return {"scheme": name, "scheme_options": dict(options)}


def main() -> None:
    matrix = repro.matrices.build_matrix("M4", n=3000, seed=0)
    n = matrix.shape[0]
    print(f"thermal-style analogue: n = {n:,}, nnz = {matrix.nnz:,}")

    reference = repro.solve(matrix, n_nodes=N_NODES,
                            preconditioner="block_jacobi")
    failure_iteration = max(2, reference.iterations // 2)
    print(f"reference: {reference.summary()}")
    print(f"phi = {PHI}: nodes {list(FAILED_RANKS)} fail together at "
          f"iteration {failure_iteration}\n")

    # Storage accounting comes from the scheme itself; build each one on the
    # same distributed problem the solver will use.
    problem = repro.distribute_problem(matrix, n_nodes=N_NODES)

    rows = []
    recovered = {}
    for name, options in SCHEMES:
        scheme = build_redundancy_scheme(name, problem.context, PHI,
                                         options=options)
        stored = scheme.redundant_elements_per_generation()
        messages, elements = scheme.extra_traffic_per_iteration()

        result = repro.solve(
            matrix, n_nodes=N_NODES, preconditioner="block_jacobi",
            phi=PHI, failures=[(failure_iteration, list(FAILED_RANKS))],
            **scheme_options_for(name, options),
        )
        recovered[name] = result
        overhead = result.info["redundancy"]
        rows.append([
            name,
            f"{stored / n:.2f}n",
            messages,
            elements,
            f"{overhead['per_iteration_time'] * 1e6:.1f}",
            result.iterations,
            "yes" if np.allclose(result.x, reference.x,
                                 rtol=1e-10, atol=1e-12) else "NO",
        ])

    print(format_table(
        ["scheme", "stored/gen", "msgs/iter", "elems/iter",
         "overhead/iter [us]", "iterations", "matches reference"],
        rows,
        title=f"Redundancy schemes surviving {PHI} simultaneous failures",
    ))

    bit_identical = np.array_equal(recovered["copies"].x,
                                   recovered["rs_parity"].x)
    print(f"\nrecovered solutions bit-identical across schemes: "
          f"{bit_identical}")
    print("rs_parity stores one owner snapshot plus m parity rows per "
          f"g={GROUP_SIZE} stripe -- ~{1 + PHI / GROUP_SIZE:.2f}n vs "
          f"{PHI:.2f}n for copies -- and decodes lost blocks bit-exactly, "
          "so exact state\nreconstruction proceeds unchanged on top of it.")


if __name__ == "__main__":
    main()
