#!/usr/bin/env python3
"""Circuit-simulation workload: the unfavourable sparsity regime.

Matrices like ``G3_circuit`` (M3 in the paper) have only ~5 non-zeros per row
scattered irregularly: most search-direction elements are never communicated
during the SpMV, so every redundant copy the ESR scheme keeps has to be
shipped explicitly.  This example quantifies that effect: it analyses the
multiplicity distribution of Eqn. (3), the extra traffic of Eqn. (6) per
redundancy level, and measures the resulting runtime overhead -- the
experiment behind the M3 rows of Table 2 and the Sec. 5 discussion.

Run with:  python examples/circuit_simulation.py
"""

import repro
from repro.cluster import MachineModel
from repro.analysis import analyze_overhead, sparsity_report
from repro.harness import format_table


N_NODES = 16
TARGET_SIZE = 8000


def main() -> None:
    print(f"Building a circuit-like SPD matrix (~{TARGET_SIZE} unknowns)...")
    matrix = repro.matrices.build_matrix("M3", n=TARGET_SIZE, seed=0)
    props = repro.matrices.analyze(matrix)
    print(f"  n = {props.n:,}, nnz = {props.nnz:,} "
          f"({props.nnz_per_row_mean:.1f} per row)")

    # Calibrate the cost model to the paper's rows-per-node regime so the
    # compute/latency balance (and hence the relative overheads) matches the
    # 128-node runs of the paper (see EXPERIMENTS.md).
    machine = MachineModel(jitter_rel_std=0.0).scaled(
        max(1.0, 8000 / (matrix.shape[0] / N_NODES)))

    problem = repro.distribute_problem(matrix, n_nodes=N_NODES, seed=0)

    # --- sparsity-pattern analysis (Sec. 5) --------------------------------
    report = sparsity_report(problem.matrix, phi=3, context=problem.context)
    print("\nSparsity analysis for phi = 3:")
    print(f"  multiplicity histogram m_i(s): {report.multiplicity_histogram}")
    print(f"  elements with >= 3 natural copies: {report.natural_coverage:.1%}")
    print(f"  extras that can piggyback on SpMV: {report.piggyback_fraction:.1%}")
    print(f"  Sec. 5 band condition holds: {report.band_condition}")

    # --- overhead vs. number of redundant copies ---------------------------
    reference = repro.solve(matrix, n_nodes=N_NODES, seed=1, machine=machine,
                            preconditioner="block_jacobi")
    print(f"\nreference PCG: {reference.summary()}")

    rows = []
    for phi in (1, 3, 8):
        analysis = analyze_overhead(problem.matrix, phi, context=problem.context)
        resilient = repro.solve(matrix, n_nodes=N_NODES, seed=phi,
                                machine=machine,
                                preconditioner="block_jacobi", phi=phi)
        overhead = 100 * (resilient.simulated_time - reference.simulated_time) \
            / reference.simulated_time
        rows.append([
            phi,
            analysis.total_extra_elements,
            analysis.extra_messages,
            f"{analysis.per_iteration_time * 1e6:.1f}",
            f"{overhead:.1f}",
        ])
    print()
    print(format_table(
        ["phi", "extra elems/iter", "extra msgs/iter",
         "modelled ovh [us/iter]", "measured ovh [%]"],
        rows,
        title="Redundancy cost on the circuit analogue (cf. M3 in Table 2)",
    ))
    print("\nNote: for matrices this sparse the paper measures up to 91% "
          "overhead for phi = 8 -- the price of\ntolerating many simultaneous "
          "failures when nothing piggybacks on existing messages.")


if __name__ == "__main__":
    main()
