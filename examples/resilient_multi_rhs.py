#!/usr/bin/env python3
"""Resilient multi-RHS solves: a block of right-hand sides surviving failures.

Multi-RHS workloads (multiple load cases in structural analysis, multiple
source terms in circuit simulation) solve ``A X = B`` for a whole block of
right-hand sides.  The block solver runs all columns in lock-step and
amortizes the latency-bound legs of every iteration -- one halo exchange and
``k``-wide allreduces instead of ``k`` of each.  Composing a ``ResilienceSpec``
with the multi-RHS block makes the lock-step run survive node failures too:
redundant ``(rows, k)`` copies of the search-direction block ride the batched
SpMV's messages (no extra messages vs. the single-vector scheme -- only the
volume grows), and one recovery episode re-assembles *all* ``k`` columns of
the lost rows with a single reverse scatter and one amortized local
multi-RHS solve.

This example solves 4 right-hand sides at once, kills two nodes mid-solve,
and checks that every recovered column matches an undisturbed solve.

Run with:  python examples/resilient_multi_rhs.py
"""

import numpy as np

import repro


def main() -> None:
    matrix = repro.matrices.poisson_2d(40)            # n = 1600
    n = matrix.shape[0]
    k = 4
    rng = np.random.default_rng(7)
    rhs_block = rng.standard_normal((n, k))           # 4 load cases at once

    # Undisturbed block solve (for the failure iteration and comparison).
    undisturbed = repro.solve(
        repro.distribute_problem(matrix, n_nodes=8, seed=1),
        rhs_block, preconditioner="block_jacobi",
    )
    failure_iteration = max(1, int(0.4 * max(undisturbed.iterations)))
    print(f"undisturbed block solve: k={k}, iterations="
          f"{list(undisturbed.iterations)}")
    print(f"injecting a 2-node failure at iteration {failure_iteration}")

    # A ResilienceSpec next to a multi-RHS block dispatches to the
    # resilient block solver ("resilient_block_pcg" in the registry).
    result = repro.solve(
        repro.distribute_problem(matrix, n_nodes=8, seed=0),
        rhs_block,
        spec=repro.SolveSpec(
            preconditioner="block_jacobi",
            resilience=repro.ResilienceSpec(
                phi=2, failures=[(failure_iteration, [3, 4])],
            ),
        ),
    )

    print(f"\nresilient block solve: converged={result.all_converged}, "
          f"iterations={list(result.iterations)}")
    print(f"failures recovered      : {result.n_failures_recovered}")
    for report in result.recoveries:
        print(f"recovery episode        : ranks {report.failed_ranks}, "
              f"{report.simulated_time * 1e3:.2f} ms simulated")
    summary = result.info["redundancy"]
    print(f"redundancy overhead     : {summary['per_iteration_time'] * 1e6:.2f} "
          f"us/iteration for k={int(summary['n_cols'])} columns "
          f"(phi={int(summary['phi'])})")

    for j in range(k):
        diff = np.linalg.norm(result.x[:, j] - undisturbed.x[:, j]) \
            / np.linalg.norm(undisturbed.x[:, j])
        print(f"column {j}: relative difference vs. undisturbed = {diff:.2e}")

    assert result.all_converged
    assert result.n_failures_recovered == 2
    print("\nAll columns survived the 2-node failure: the block recovery "
          "restored every column of the lost\nrows from the redundant copies "
          "with one amortized local solve, and the lock-step iteration "
          "resumed.")


if __name__ == "__main__":
    main()
