#!/usr/bin/env python3
"""Structural-mechanics workload: the favourable regime for ESR.

The paper's intro motivates resilience for exactly this kind of problem:
large 3-D solid-mechanics systems (Emilia_923, Geo_1438, Serena, audikw_1)
whose many non-zeros per row make every iteration expensive -- losing hours of
progress to a node failure is costly, while the wide, dense band around the
diagonal makes the ESR redundancy almost free (Sec. 5).

This example builds a scaled-down analogue of such a matrix, sweeps the
number of tolerated failures phi, and reports the failure-free overhead and
the cost of recovering from phi simultaneous failures in the middle of the
run -- the experiment behind Figure 1 of the paper.

Run with:  python examples/structural_mechanics.py
"""

import repro
from repro.cluster import MachineModel
from repro.analysis import analyze_overhead
from repro.harness import format_table


N_NODES = 16
TARGET_SIZE = 6000


def main() -> None:
    print("Building a 3-D elasticity-like SPD matrix "
          f"(~{TARGET_SIZE} unknowns, 3 DOFs per vertex)...")
    matrix = repro.matrices.build_matrix("M5", n=TARGET_SIZE, seed=0)
    props = repro.matrices.analyze(matrix)
    print(f"  n = {props.n:,}, nnz = {props.nnz:,} "
          f"({props.nnz_per_row_mean:.1f} per row)")

    # Calibrate the cost model to the paper's rows-per-node regime so the
    # compute/latency balance (and hence the relative overheads) matches the
    # 128-node runs of the paper (see EXPERIMENTS.md).
    machine = MachineModel(jitter_rel_std=0.0).scaled(
        max(1.0, 8000 / (matrix.shape[0] / N_NODES)))

    reference = repro.solve(matrix, n_nodes=N_NODES, seed=0, machine=machine,
                            preconditioner="block_jacobi")
    print(f"reference PCG: {reference.summary()}")
    print(f"  t0 = {reference.simulated_time * 1e3:.2f} ms simulated")

    rows = []
    for phi in (1, 3, 8):
        # Failure-free run with phi redundant copies.
        undisturbed = repro.solve(
            matrix, n_nodes=N_NODES, seed=phi, machine=machine,
            preconditioner="block_jacobi", phi=phi,
        )
        # phi simultaneous failures in the centre of the vector at ~50% progress.
        failed = [N_NODES // 2 + k for k in range(phi)]
        disturbed = repro.solve(
            matrix, n_nodes=N_NODES, seed=100 + phi, machine=machine,
            preconditioner="block_jacobi", phi=phi,
            failures=[(reference.iterations // 2, failed)],
        )
        analysis = analyze_overhead(
            repro.distribute_problem(matrix, n_nodes=N_NODES).matrix, phi
        )
        rows.append([
            phi,
            f"{100 * (undisturbed.simulated_time - reference.simulated_time) / reference.simulated_time:.1f}",
            f"{100 * disturbed.simulated_recovery_time / reference.simulated_time:.1f}",
            f"{100 * (disturbed.simulated_time - reference.simulated_time) / reference.simulated_time:.1f}",
            analysis.total_extra_elements,
            "yes" if disturbed.converged else "NO",
        ])

    print()
    print(format_table(
        ["phi", "undisturbed ovh [%]", "reconstruction [%]",
         "ovh with failures [%]", "extra elems/iter", "converged"],
        rows,
        title="ESR overheads on the structural analogue (cf. Fig. 1 / Table 2)",
    ))
    print("\nNote: wide-band structural matrices keep the redundancy traffic "
          "small because most search-direction\nelements are communicated to "
          "neighbouring nodes during SpMV anyway (Sec. 5 of the paper).")


if __name__ == "__main__":
    main()
