#!/usr/bin/env python3
"""Overlapping node failures: a second failure strikes during recovery.

Sec. 4.1 of the paper distinguishes *simultaneous* failures (several nodes die
at once, e.g. a switch outage) from *overlapping* failures (another node dies
while the reconstruction of a previous failure is still running).  The ESR
scheme handles both as long as the total number of failures within one
recovery episode stays within phi: the reconstruction simply restarts with
the enlarged failed set.

This example injects a 2-node failure at 40 % progress and a third failure
that overlaps with its recovery, then shows the recovery report.

Run with:  python examples/overlapping_failures.py
"""

import numpy as np

import repro
from repro.cluster import FailureEvent


def main() -> None:
    matrix = repro.matrices.poisson_2d(50)            # n = 2500
    problem = repro.distribute_problem(matrix, n_nodes=10, seed=0)

    reference = repro.solve(
        repro.distribute_problem(matrix, n_nodes=10, seed=1),
        preconditioner="block_jacobi",
    )
    failure_iteration = max(1, int(0.4 * reference.iterations))
    print(f"reference run: {reference.summary()}")
    print(f"injecting failures at iteration {failure_iteration}")

    # Event 0: ranks 4 and 5 fail simultaneously.
    # Event 1: rank 7 fails while the recovery of event 0 is running.
    result = repro.solve(problem, spec=repro.SolveSpec(
        preconditioner="block_jacobi",
        resilience=repro.ResilienceSpec(
            phi=3,                   # enough copies for all three failures
            failures=[
                FailureEvent(failure_iteration, (4, 5),
                             label="switch outage"),
                FailureEvent(failure_iteration, (7,), during_recovery_of=0,
                             label="overlapping failure"),
            ],
        ),
    ))

    print(f"\nresilient run: {result.summary()}")
    for report in result.recoveries:
        print("recovery episode:")
        print(f"  failed ranks          : {report.failed_ranks}")
        print(f"  reconstruction restarts: {report.restarts}")
        print(f"  reconstruction form    : {report.reconstruction_form}")
        print(f"  simulated recovery time: {report.simulated_time * 1e3:.2f} ms")
        for note in report.notes:
            print(f"  note: {note}")

    difference = np.linalg.norm(result.x - reference.x) / np.linalg.norm(reference.x)
    print(f"\nrelative solution difference vs. reference: {difference:.2e}")
    print("The overlapping failure forced one reconstruction restart, but the "
          "solver still recovered the exact state\nand converged in (nearly) "
          "the same number of iterations as the failure-free run.")


if __name__ == "__main__":
    main()
