"""Coverage ratchet: line coverage may only go up.

CI runs the test suite with ``pytest --cov=repro --cov-report=json`` and then::

    python tools/coverage_ratchet.py check coverage.json .coverage-ratchet.json

which fails the job when the measured total line coverage drops below the
committed floor in ``.coverage-ratchet.json``.  To raise the floor after a
coverage improvement, run locally (or in a follow-up commit)::

    python tools/coverage_ratchet.py update coverage.json .coverage-ratchet.json

``update`` never lowers the floor: it writes ``max(current floor, measured -
MARGIN)``, keeping a small margin so runner-to-runner variation (e.g. python
version dependent branches) cannot flake the gate.

Besides the total floor, the ratchet file may carry ``required_modules`` --
a mapping of module path prefixes (relative to ``src/``, ``/``-separated) to
per-module line-coverage floors::

    {
      "min_line_coverage_percent": 80.0,
      "required_modules": {"repro/lint": 85.0, "repro/sanitizer.py": 85.0}
    }

``check`` then also fails when a required module does not appear in the
coverage report at all (e.g. the package was moved and silently dropped from
collection) or when its aggregated line coverage is below its floor.
``update`` preserves the ``required_modules`` section verbatim.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Tuple

#: Slack between the measured coverage and the committed floor.
MARGIN = 0.5


def measured_percent(coverage_json: Path) -> float:
    """Total line-coverage percent from a ``--cov-report=json`` file."""
    data = json.loads(coverage_json.read_text())
    return float(data["totals"]["percent_covered"])


def module_percents(coverage_json: Path,
                    prefixes: Dict[str, float]) -> Dict[str, Tuple[int, float]]:
    """Aggregated ``(n_files, percent)`` per required-module prefix.

    A file counts towards prefix ``p`` when its report path, normalised to
    ``/`` separators and stripped of a leading ``src/``, equals ``p`` or
    lives under ``p/``.  Missing prefixes map to ``(0, 0.0)``.
    """
    data = json.loads(coverage_json.read_text())
    out: Dict[str, Tuple[int, float]] = {}
    for prefix in prefixes:
        n_files = 0
        statements = 0
        covered = 0
        for path, entry in data.get("files", {}).items():
            norm = path.replace("\\", "/")
            if norm.startswith("src/"):
                norm = norm[len("src/"):]
            if norm == prefix or norm.startswith(prefix.rstrip("/") + "/"):
                summary = entry["summary"]
                n_files += 1
                statements += int(summary["num_statements"])
                covered += int(summary["covered_lines"])
        percent = 100.0 * covered / statements if statements else 0.0
        out[prefix] = (n_files, percent)
    return out


def read_ratchet(ratchet_file: Path) -> dict:
    return json.loads(ratchet_file.read_text())


def read_floor(ratchet_file: Path) -> float:
    return float(read_ratchet(ratchet_file)["min_line_coverage_percent"])


def check(coverage_json: Path, ratchet_file: Path) -> int:
    ratchet = read_ratchet(ratchet_file)
    measured = measured_percent(coverage_json)
    floor = float(ratchet["min_line_coverage_percent"])
    print(f"line coverage: measured {measured:.2f}%, "
          f"committed floor {floor:.2f}%")
    status = 0
    if measured < floor:
        print(
            f"ERROR: coverage regressed below the ratchet floor "
            f"({measured:.2f}% < {floor:.2f}%). Add tests, or -- if the drop "
            f"is intentional -- lower {ratchet_file} in the same PR and "
            f"justify it in the description.",
            file=sys.stderr,
        )
        status = 1
    required = {str(k): float(v)
                for k, v in ratchet.get("required_modules", {}).items()}
    for prefix, (n_files, percent) in sorted(
            module_percents(coverage_json, required).items()):
        module_floor = required[prefix]
        if n_files == 0:
            print(
                f"ERROR: required module {prefix!r} is absent from the "
                f"coverage report -- it was moved, renamed or dropped from "
                f"collection without updating {ratchet_file}.",
                file=sys.stderr,
            )
            status = 1
            continue
        print(f"module {prefix}: {n_files} file(s), {percent:.2f}% "
              f"(floor {module_floor:.2f}%)")
        if percent < module_floor:
            print(
                f"ERROR: module {prefix!r} coverage {percent:.2f}% is below "
                f"its floor {module_floor:.2f}%.",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        headroom = measured - floor
        if headroom > 2.0:
            print(f"note: {headroom:.2f}% headroom -- consider ratcheting the "
                  f"floor up with the 'update' command")
    return status


def update(coverage_json: Path, ratchet_file: Path) -> int:
    measured = measured_percent(coverage_json)
    if ratchet_file.exists():
        ratchet = read_ratchet(ratchet_file)
    else:
        ratchet = {"min_line_coverage_percent": 0.0}
    current = float(ratchet["min_line_coverage_percent"])
    new_floor = max(current, round(measured - MARGIN, 2))
    ratchet["min_line_coverage_percent"] = new_floor
    # ``required_modules`` floors are policy, not measurements: preserved.
    ratchet_file.write_text(json.dumps(ratchet, indent=2, sort_keys=True)
                            + "\n")
    print(f"ratchet floor: {current:.2f}% -> {new_floor:.2f}% "
          f"(measured {measured:.2f}%, margin {MARGIN}%)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("check", "update"))
    parser.add_argument("coverage_json", type=Path,
                        help="coverage.json produced by --cov-report=json")
    parser.add_argument("ratchet_file", type=Path,
                        help="committed ratchet file "
                             "(.coverage-ratchet.json)")
    args = parser.parse_args(argv)
    if args.command == "check":
        return check(args.coverage_json, args.ratchet_file)
    return update(args.coverage_json, args.ratchet_file)


if __name__ == "__main__":
    raise SystemExit(main())
