"""Coverage ratchet: line coverage may only go up.

CI runs the test suite with ``pytest --cov=repro --cov-report=json`` and then::

    python tools/coverage_ratchet.py check coverage.json .coverage-ratchet.json

which fails the job when the measured total line coverage drops below the
committed floor in ``.coverage-ratchet.json``.  To raise the floor after a
coverage improvement, run locally (or in a follow-up commit)::

    python tools/coverage_ratchet.py update coverage.json .coverage-ratchet.json

``update`` never lowers the floor: it writes ``max(current floor, measured -
MARGIN)``, keeping a small margin so runner-to-runner variation (e.g. python
version dependent branches) cannot flake the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Slack between the measured coverage and the committed floor.
MARGIN = 0.5


def measured_percent(coverage_json: Path) -> float:
    """Total line-coverage percent from a ``--cov-report=json`` file."""
    data = json.loads(coverage_json.read_text())
    return float(data["totals"]["percent_covered"])


def read_floor(ratchet_file: Path) -> float:
    data = json.loads(ratchet_file.read_text())
    return float(data["min_line_coverage_percent"])


def check(coverage_json: Path, ratchet_file: Path) -> int:
    measured = measured_percent(coverage_json)
    floor = read_floor(ratchet_file)
    print(f"line coverage: measured {measured:.2f}%, "
          f"committed floor {floor:.2f}%")
    if measured < floor:
        print(
            f"ERROR: coverage regressed below the ratchet floor "
            f"({measured:.2f}% < {floor:.2f}%). Add tests, or -- if the drop "
            f"is intentional -- lower {ratchet_file} in the same PR and "
            f"justify it in the description.",
            file=sys.stderr,
        )
        return 1
    headroom = measured - floor
    if headroom > 2.0:
        print(f"note: {headroom:.2f}% headroom -- consider ratcheting the "
              f"floor up with the 'update' command")
    return 0


def update(coverage_json: Path, ratchet_file: Path) -> int:
    measured = measured_percent(coverage_json)
    current = read_floor(ratchet_file) if ratchet_file.exists() else 0.0
    new_floor = max(current, round(measured - MARGIN, 2))
    ratchet_file.write_text(json.dumps(
        {"min_line_coverage_percent": new_floor}, indent=2) + "\n")
    print(f"ratchet floor: {current:.2f}% -> {new_floor:.2f}% "
          f"(measured {measured:.2f}%, margin {MARGIN}%)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("check", "update"))
    parser.add_argument("coverage_json", type=Path,
                        help="coverage.json produced by --cov-report=json")
    parser.add_argument("ratchet_file", type=Path,
                        help="committed ratchet file "
                             "(.coverage-ratchet.json)")
    args = parser.parse_args(argv)
    if args.command == "check":
        return check(args.coverage_json, args.ratchet_file)
    return update(args.coverage_json, args.ratchet_file)


if __name__ == "__main__":
    raise SystemExit(main())
