"""Suppression-debt ratchet: lint exemptions may only go down.

Every ``# noqa: R00X`` comment and every allowlist entry in
``repro.lint.allowlists`` is *debt* -- a place where a pinned invariant is
deliberately not enforced.  CI runs::

    python tools/lint_debt.py check

which counts the current debt per rule and fails the job when any count
exceeds the committed baseline in ``.lint-debt.json``: new suppressions
need either a fix instead, or a deliberate baseline bump reviewed in the
same PR.  After *reducing* debt (or after a reviewed extension), refresh
the baseline with::

    python tools/lint_debt.py update

which writes the measured counts (sorted, stable) back to the file.
Shrunk debt makes ``check`` print a note suggesting exactly that.

Counting rules: ``# noqa`` comments are counted from the scanned tree's
source lines (a bare ``# noqa`` counts towards *every* rule it silences,
i.e. all of them); allowlist entries are counted straight from the pinned
:data:`repro.lint.allowlists.ALLOWLISTS` patterns.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.allowlists import ALLOWLISTS  # noqa: E402
from repro.lint.engine import _NOQA_RE, discover_files  # noqa: E402
from repro.lint.registry import rule_ids  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / ".lint-debt.json"
DEFAULT_SCAN_ROOT = REPO_ROOT / "src" / "repro"


def _real_noqa(line: str):
    """The first actual suppression comment on *line*, if any.

    Prose that merely *mentions* ``# noqa`` (docstrings, comments about the
    machinery) always quotes it -- ````# noqa```` or ``"# noqa"`` -- so a
    match immediately preceded by a quote or backtick is not a suppression.
    """
    for match in _NOQA_RE.finditer(line):
        if match.start() > 0 and line[match.start() - 1] in "`'\"":
            continue
        return match
    return None


def measure_debt(scan_root: Path) -> Dict[str, Dict[str, int]]:
    """``{rule: {"allowlist": n, "noqa": n}}`` for every enforced rule."""
    debt: Dict[str, Dict[str, int]] = {
        rule: {"allowlist": len(ALLOWLISTS.get(rule, ())), "noqa": 0}
        for rule in rule_ids()
    }
    for abs_path, _rel in discover_files([scan_root]):
        for line in abs_path.read_text(encoding="utf-8").splitlines():
            match = _real_noqa(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                # A bare ``# noqa`` silences every rule on the line.
                for rule in debt:
                    debt[rule]["noqa"] += 1
                continue
            for code in codes.split(","):
                rule = code.strip().upper()
                if rule in debt:
                    debt[rule]["noqa"] += 1
    return debt


def check(baseline_file: Path, scan_root: Path) -> int:
    if not baseline_file.exists():
        print(f"ERROR: no baseline at {baseline_file}; run "
              f"'python tools/lint_debt.py update' and commit the result.",
              file=sys.stderr)
        return 1
    baseline: Dict[str, Dict[str, int]] = json.loads(
        baseline_file.read_text())
    debt = measure_debt(scan_root)
    status = 0
    shrunk = False
    for rule in sorted(debt):
        measured = debt[rule]
        committed = baseline.get(rule)
        if committed is None:
            print(f"ERROR: rule {rule} is enforced but missing from "
                  f"{baseline_file}; run the 'update' command and review "
                  f"the diff.", file=sys.stderr)
            status = 1
            continue
        for kind in ("allowlist", "noqa"):
            have = int(measured[kind])
            allowed = int(committed.get(kind, 0))
            marker = ""
            if have > allowed:
                print(f"ERROR: {rule} {kind} debt grew: {have} > committed "
                      f"{allowed}. Fix the violation instead of suppressing "
                      f"it, or bump {baseline_file.name} deliberately in "
                      f"the same PR.", file=sys.stderr)
                status = 1
                marker = "  <-- GREW"
            elif have < allowed:
                shrunk = True
            print(f"{rule} {kind}: {have} (baseline {allowed}){marker}")
    if status == 0 and shrunk:
        print("note: suppression debt shrank -- ratchet the baseline down "
              "with 'python tools/lint_debt.py update'")
    return status


def update(baseline_file: Path, scan_root: Path) -> int:
    debt = measure_debt(scan_root)
    baseline_file.write_text(
        json.dumps(debt, indent=2, sort_keys=True) + "\n")
    total = sum(v["allowlist"] + v["noqa"] for v in debt.values())
    print(f"wrote {baseline_file} ({len(debt)} rules, "
          f"total debt {total})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("check", "update"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline file (.lint-debt.json)")
    parser.add_argument("--scan-root", type=Path, default=DEFAULT_SCAN_ROOT,
                        help="tree whose # noqa comments are counted "
                             "(default: src/repro)")
    args = parser.parse_args(argv)
    if args.command == "check":
        return check(args.baseline, args.scan_root)
    return update(args.baseline, args.scan_root)


if __name__ == "__main__":
    raise SystemExit(main())
